"""The interval abstract domain ``A_I`` (paper section 4.3).

An :class:`IntervalDomain` abstracts a multi-integer secret by one interval
per field: geometrically, an axis-aligned integer box.  The paper's three
constructors map as follows:

* ``A_I dom pos neg`` — a non-empty box (``box`` attribute);
* ``⊤_I``            — the full secret space (still just a box here, since
  every secret type has explicit global bounds);
* ``⊥_I``            — the empty domain (``box is None``).

The ``pos``/``neg`` proof terms of the Haskell encoding have no run-time
content; their verification role is played by
:meth:`member_formula` + :mod:`repro.refine.checker`, which machine-check
the same facts the Liquid Haskell proofs establish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lang.ast import BoolExpr, BoolLit
from repro.lang.secrets import SecretSpec, SecretValue
from repro.domains.base import AbstractDomain
from repro.domains.interval import AInt
from repro.solver.boxes import Box
from repro.solver.regions import box_formula

__all__ = ["IntervalDomain"]


@dataclass(frozen=True)
class IntervalDomain(AbstractDomain):
    """A box of secrets (``A_I``), possibly empty (``box is None``)."""

    spec: SecretSpec
    box: Box | None

    def __post_init__(self) -> None:
        if self.box is not None:
            if self.box.arity != self.spec.arity:
                raise ValueError(
                    f"box arity {self.box.arity} != secret arity "
                    f"{self.spec.arity}"
                )
            space = Box(self.spec.bounds())
            if not space.contains_box(self.box):
                raise ValueError(
                    f"box {self.box} exceeds the global bounds of "
                    f"{self.spec.name!r}"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def top(cls, spec: SecretSpec) -> "IntervalDomain":
        """The full secret space (the paper's ``⊤_I``)."""
        return cls(spec, Box(spec.bounds()))

    @classmethod
    def bottom(cls, spec: SecretSpec) -> "IntervalDomain":
        """The empty domain (the paper's ``⊥_I``)."""
        return cls(spec, None)

    @classmethod
    def from_aints(cls, spec: SecretSpec, intervals: Iterable[AInt]) -> "IntervalDomain":
        """Build from per-field ``AInt``s, the paper's ``A [AInt ...]``."""
        pairs = tuple(interval.as_pair() for interval in intervals)
        if len(pairs) != spec.arity:
            raise ValueError(
                f"{spec.name!r} has {spec.arity} fields, got {len(pairs)} intervals"
            )
        return cls(spec, Box(pairs))

    def aints(self) -> tuple[AInt, ...]:
        """Per-field intervals (raises on the empty domain)."""
        if self.box is None:
            raise ValueError("the empty domain has no intervals")
        return tuple(AInt(lo, hi) for lo, hi in self.box.bounds)

    # -- AbstractDomain methods ---------------------------------------------
    def contains(self, secret: SecretValue) -> bool:
        if self.box is None:
            return False
        point = self.spec.validate_value(secret)
        return self.box.contains(point)

    def is_subset(self, other: AbstractDomain) -> bool:
        self._check_same_spec(other)
        if self.box is None:
            return True
        if isinstance(other, IntervalDomain):
            if other.box is None:
                return False
            return other.box.contains_box(self.box)
        # Generic fallback via the other domain's geometry.
        from repro.domains.powerset import PowersetDomain

        return PowersetDomain.from_interval(self).is_subset(other)

    def intersect(self, other: AbstractDomain) -> "IntervalDomain":
        self._check_same_spec(other)
        if not isinstance(other, IntervalDomain):
            raise TypeError(
                "IntervalDomain can only intersect IntervalDomain; "
                "lift to PowersetDomain for mixed intersections"
            )
        if self.box is None or other.box is None:
            return IntervalDomain.bottom(self.spec)
        return IntervalDomain(self.spec, self.box.intersect(other.box))

    def size(self) -> int:
        return 0 if self.box is None else self.box.volume()

    def is_empty(self) -> bool:
        return self.box is None

    def member_formula(self) -> BoolExpr:
        if self.box is None:
            return BoolLit(False)
        return box_formula(self.box, self.spec.field_names)

    # -- conveniences ------------------------------------------------------
    def boxes(self) -> Sequence[Box]:
        """The domain as a list of disjoint boxes (empty list for ⊥)."""
        return [] if self.box is None else [self.box]

    def __repr__(self) -> str:
        if self.box is None:
            return f"IntervalDomain({self.spec.name}, ⊥)"
        dims = ", ".join(
            f"{name}∈[{lo},{hi}]"
            for name, (lo, hi) in zip(self.spec.field_names, self.box.bounds)
        )
        return f"IntervalDomain({self.spec.name}, {dims})"
