"""Three-valued (Kleene) logic used by the abstract evaluator.

Abstract evaluation of a query over a box of secrets cannot always decide
the query: some points in the box may satisfy it and others may not.  The
result is therefore a :class:`Ternary` — ``TRUE`` (all points satisfy),
``FALSE`` (no point satisfies) or ``UNKNOWN`` (mixed / undecided).
"""

from __future__ import annotations

import enum

__all__ = ["Ternary", "TRUE", "FALSE", "UNKNOWN", "from_bool"]


class Ternary(enum.Enum):
    """Kleene three-valued truth value."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def negate(self) -> "Ternary":
        """Kleene negation: swaps TRUE/FALSE, preserves UNKNOWN."""
        if self is Ternary.TRUE:
            return Ternary.FALSE
        if self is Ternary.FALSE:
            return Ternary.TRUE
        return Ternary.UNKNOWN

    def conj(self, other: "Ternary") -> "Ternary":
        """Kleene conjunction (FALSE dominates)."""
        if self is Ternary.FALSE or other is Ternary.FALSE:
            return Ternary.FALSE
        if self is Ternary.TRUE and other is Ternary.TRUE:
            return Ternary.TRUE
        return Ternary.UNKNOWN

    def disj(self, other: "Ternary") -> "Ternary":
        """Kleene disjunction (TRUE dominates)."""
        if self is Ternary.TRUE or other is Ternary.TRUE:
            return Ternary.TRUE
        if self is Ternary.FALSE and other is Ternary.FALSE:
            return Ternary.FALSE
        return Ternary.UNKNOWN

    @property
    def decided(self) -> bool:
        """Whether this value is TRUE or FALSE (not UNKNOWN)."""
        return self is not Ternary.UNKNOWN

    def as_bool(self) -> bool:
        """Convert a decided value to ``bool``; raises on UNKNOWN."""
        if self is Ternary.TRUE:
            return True
        if self is Ternary.FALSE:
            return False
        raise ValueError("cannot convert UNKNOWN to bool")


TRUE = Ternary.TRUE
FALSE = Ternary.FALSE
UNKNOWN = Ternary.UNKNOWN


def from_bool(value: bool) -> Ternary:
    """Lift a concrete boolean into the three-valued lattice."""
    return Ternary.TRUE if value else Ternary.FALSE
