"""Abstract syntax for the ANOSY query language.

The paper (section 5.1) restricts declassification queries to boolean
functions over multi-integer secrets built from linear integer arithmetic,
absolute values, conditionals, and boolean connectives.  This module defines
that language as a small, immutable expression AST.

The AST doubles as an embedded DSL: integer expressions overload ``+``,
``-``, ``*`` (by constants), ``abs()`` and the ordering comparisons, while
boolean expressions overload ``&``, ``|`` and ``~``.  Because Python's ``==``
is reserved for structural equality (used pervasively by tests and by the
solver's caches), equality *atoms* are written ``x.eq(5)`` / ``x.ne(5)``.

Example
-------
>>> from repro.lang.ast import var
>>> x, y = var("x"), var("y")
>>> nearby = abs(x - 200) + abs(y - 200) <= 100
>>> nearby
Cmp(op=<CmpOp.LE: '<='>, ...)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Iterator, Union

__all__ = [
    "Expr",
    "IntExpr",
    "BoolExpr",
    "Var",
    "Lit",
    "Add",
    "Sub",
    "Neg",
    "Scale",
    "Abs",
    "Min",
    "Max",
    "IntIte",
    "BoolLit",
    "CmpOp",
    "Cmp",
    "And",
    "Or",
    "Not",
    "Implies",
    "Iff",
    "InSet",
    "var",
    "lit",
    "TRUE",
    "FALSE",
]


class Expr:
    """Common base class for all AST nodes.

    Nodes are frozen dataclasses: structurally hashable, comparable with
    ``==``, and safe to share between formulas.  ``children()`` yields the
    direct sub-expressions, which is enough for the generic traversals in
    :mod:`repro.lang.transform`.
    """

    __slots__ = ()

    def children(self) -> Iterator["Expr"]:
        """Yield direct sub-expressions (ints and sets are not children)."""
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, Expr):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expr):
                        yield item

    def node_count(self) -> int:
        """Number of AST nodes in this expression (for budgeting/tests)."""
        return 1 + sum(child.node_count() for child in self.children())


def _as_int_expr(value: Union["IntExpr", int]) -> "IntExpr":
    if isinstance(value, IntExpr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("expected an integer expression, got a bool")
    if isinstance(value, int):
        return Lit(value)
    raise TypeError(f"expected an integer expression or int, got {value!r}")


class IntExpr(Expr):
    """Base class for integer-valued expressions, with DSL operators."""

    __slots__ = ()

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: Union["IntExpr", int]) -> "Add":
        return Add(self, _as_int_expr(other))

    def __radd__(self, other: int) -> "Add":
        return Add(_as_int_expr(other), self)

    def __sub__(self, other: Union["IntExpr", int]) -> "Sub":
        return Sub(self, _as_int_expr(other))

    def __rsub__(self, other: int) -> "Sub":
        return Sub(_as_int_expr(other), self)

    def __neg__(self) -> "Neg":
        return Neg(self)

    def __mul__(self, other: int) -> "Scale":
        if not isinstance(other, int) or isinstance(other, bool):
            raise TypeError(
                "queries are restricted to linear arithmetic: "
                "multiplication is only allowed by integer constants"
            )
        return Scale(other, self)

    __rmul__ = __mul__

    def __abs__(self) -> "Abs":
        return Abs(self)

    # -- comparisons -----------------------------------------------------
    def __le__(self, other: Union["IntExpr", int]) -> "Cmp":
        return Cmp(CmpOp.LE, self, _as_int_expr(other))

    def __lt__(self, other: Union["IntExpr", int]) -> "Cmp":
        return Cmp(CmpOp.LT, self, _as_int_expr(other))

    def __ge__(self, other: Union["IntExpr", int]) -> "Cmp":
        return Cmp(CmpOp.GE, self, _as_int_expr(other))

    def __gt__(self, other: Union["IntExpr", int]) -> "Cmp":
        return Cmp(CmpOp.GT, self, _as_int_expr(other))

    def eq(self, other: Union["IntExpr", int]) -> "Cmp":
        """Equality atom ``self == other`` (``==`` itself is structural)."""
        return Cmp(CmpOp.EQ, self, _as_int_expr(other))

    def ne(self, other: Union["IntExpr", int]) -> "Cmp":
        """Disequality atom ``self != other``."""
        return Cmp(CmpOp.NE, self, _as_int_expr(other))

    def in_set(self, values) -> "InSet":
        """Finite-set membership atom, e.g. ``country.in_set({3, 7, 19})``."""
        return InSet(self, frozenset(int(v) for v in values))


class BoolExpr(Expr):
    """Base class for boolean-valued expressions, with DSL connectives."""

    __slots__ = ()

    def __and__(self, other: "BoolExpr") -> "And":
        return And((self, _as_bool_expr(other)))

    def __or__(self, other: "BoolExpr") -> "Or":
        return Or((self, _as_bool_expr(other)))

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "BoolExpr") -> "Implies":
        return Implies(self, _as_bool_expr(other))

    def iff(self, other: "BoolExpr") -> "Iff":
        return Iff(self, _as_bool_expr(other))

    def ite(self, then: Union["IntExpr", int], other: Union["IntExpr", int]) -> "IntIte":
        """Integer conditional ``if self then then-branch else else-branch``."""
        return IntIte(self, _as_int_expr(then), _as_int_expr(other))


def _as_bool_expr(value: "BoolExpr") -> "BoolExpr":
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return BoolLit(value)
    raise TypeError(f"expected a boolean expression, got {value!r}")


# ---------------------------------------------------------------------------
# Integer expression nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=True)
class Var(IntExpr):
    """A named integer secret field, e.g. ``x`` of ``UserLoc``."""

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, eq=True)
class Lit(IntExpr):
    """An integer literal."""

    value: int

    def __repr__(self) -> str:
        return f"Lit({self.value})"


@dataclass(frozen=True, eq=True)
class Add(IntExpr):
    """Binary addition."""

    left: IntExpr
    right: IntExpr


@dataclass(frozen=True, eq=True)
class Sub(IntExpr):
    """Binary subtraction."""

    left: IntExpr
    right: IntExpr


@dataclass(frozen=True, eq=True)
class Neg(IntExpr):
    """Arithmetic negation."""

    arg: IntExpr


@dataclass(frozen=True, eq=True)
class Scale(IntExpr):
    """Multiplication by an integer constant (keeps the language linear)."""

    coeff: int
    arg: IntExpr


@dataclass(frozen=True, eq=True)
class Abs(IntExpr):
    """Absolute value, the paper's ``abs i = if i < 0 then -i else i``."""

    arg: IntExpr


@dataclass(frozen=True, eq=True)
class Min(IntExpr):
    """Binary minimum (definable via ite; kept primitive for precision)."""

    left: IntExpr
    right: IntExpr


@dataclass(frozen=True, eq=True)
class Max(IntExpr):
    """Binary maximum."""

    left: IntExpr
    right: IntExpr


@dataclass(frozen=True, eq=True)
class IntIte(IntExpr):
    """Integer conditional ``if cond then then_branch else else_branch``."""

    cond: "BoolExpr"
    then_branch: IntExpr
    else_branch: IntExpr


# ---------------------------------------------------------------------------
# Boolean expression nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=True)
class BoolLit(BoolExpr):
    """A boolean literal."""

    value: bool


class CmpOp(enum.Enum):
    """Comparison operators on integer expressions."""

    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"
    EQ = "=="
    NE = "!="

    def negate(self) -> "CmpOp":
        """The operator denoting the complement relation."""
        return _NEGATIONS[self]

    def flip(self) -> "CmpOp":
        """The operator with arguments swapped (``a <= b`` iff ``b >= a``)."""
        return _FLIPS[self]

    def holds(self, left: int, right: int) -> bool:
        """Evaluate the relation on concrete integers."""
        return _CONCRETE[self](left, right)


_NEGATIONS = {
    CmpOp.LE: CmpOp.GT,
    CmpOp.LT: CmpOp.GE,
    CmpOp.GE: CmpOp.LT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
}

_FLIPS = {
    CmpOp.LE: CmpOp.GE,
    CmpOp.LT: CmpOp.GT,
    CmpOp.GE: CmpOp.LE,
    CmpOp.GT: CmpOp.LT,
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
}

_CONCRETE = {
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}


@dataclass(frozen=True, eq=True)
class Cmp(BoolExpr):
    """A comparison atom between two integer expressions."""

    op: CmpOp
    left: IntExpr
    right: IntExpr


@dataclass(frozen=True, eq=True)
class And(BoolExpr):
    """N-ary conjunction."""

    args: tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True, eq=True)
class Or(BoolExpr):
    """N-ary disjunction."""

    args: tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True, eq=True)
class Not(BoolExpr):
    """Boolean negation."""

    arg: BoolExpr


@dataclass(frozen=True, eq=True)
class Implies(BoolExpr):
    """Implication ``antecedent => consequent``."""

    antecedent: BoolExpr
    consequent: BoolExpr


@dataclass(frozen=True, eq=True)
class Iff(BoolExpr):
    """Bi-implication."""

    left: BoolExpr
    right: BoolExpr


@dataclass(frozen=True, eq=True)
class InSet(BoolExpr):
    """Finite-set membership ``arg in {c1, ..., cn}``.

    This is the "point-wise comparison" form the paper highlights in section
    6.1: queries of shape ``x = c1 or x = c2 or ...`` that powerset domains
    approximate far better than single intervals.
    """

    arg: IntExpr
    values: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not isinstance(self.values, frozenset):
            object.__setattr__(self, "values", frozenset(self.values))


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def var(name: str) -> Var:
    """Create a named integer variable (a secret field)."""
    return Var(name)


def lit(value: int) -> Lit:
    """Create an integer literal node."""
    return Lit(int(value))


TRUE = BoolLit(True)
FALSE = BoolLit(False)
