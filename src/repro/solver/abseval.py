"""Abstract evaluation of query expressions over boxes.

This is the sound three-valued semantics at the core of the solver: an
integer expression evaluates to a :mod:`range <repro.solver.interval>`
containing every concrete result on the box, and a boolean expression
evaluates to a :class:`~repro.lang.ternary.Ternary`:

* ``TRUE``  — every point of the box satisfies the formula,
* ``FALSE`` — no point does,
* ``UNKNOWN`` — undecided at this granularity (split and retry).

:func:`specialize` additionally rebuilds the formula with all decided
sub-expressions replaced by literals, so that branch-and-bound recursion
evaluates ever-smaller formulas as boxes shrink.

Soundness invariant (checked by property tests): for every point ``p`` in
the box, ``eval_bool(phi, p)`` is compatible with ``eval_bool_abs`` —
``TRUE`` forces ``True``, ``FALSE`` forces ``False``.  On single-point
boxes the abstract result is always decided and equals the concrete one.
"""

from __future__ import annotations

from typing import Mapping

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.ternary import FALSE, TRUE, UNKNOWN, Ternary, from_bool
from repro.solver import interval
from repro.solver.interval import Range

__all__ = ["eval_int_abs", "eval_bool_abs", "specialize", "BoxEnv"]

#: Abstract environment: variable name -> integer range.
BoxEnv = Mapping[str, Range]


def eval_int_abs(expr: IntExpr, env: BoxEnv) -> Range:
    """Tightest-per-operation range of ``expr`` over the box ``env``."""
    match expr:
        case Lit(value):
            return (value, value)
        case Var(name):
            return env[name]
        case Add(left, right):
            return interval.add(eval_int_abs(left, env), eval_int_abs(right, env))
        case Sub(left, right):
            return interval.sub(eval_int_abs(left, env), eval_int_abs(right, env))
        case Neg(arg):
            return interval.neg(eval_int_abs(arg, env))
        case Scale(coeff, arg):
            return interval.scale(coeff, eval_int_abs(arg, env))
        case Abs(arg):
            return interval.abs_(eval_int_abs(arg, env))
        case Min(left, right):
            return interval.min_(eval_int_abs(left, env), eval_int_abs(right, env))
        case Max(left, right):
            return interval.max_(eval_int_abs(left, env), eval_int_abs(right, env))
        case IntIte(cond, then_branch, else_branch):
            truth = eval_bool_abs(cond, env)
            if truth is TRUE:
                return eval_int_abs(then_branch, env)
            if truth is FALSE:
                return eval_int_abs(else_branch, env)
            return interval.join(
                eval_int_abs(then_branch, env), eval_int_abs(else_branch, env)
            )
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


def _cmp_ranges(op: CmpOp, a: Range, b: Range) -> Ternary:
    """Decide a comparison of two ranges, if possible."""
    alo, ahi = a
    blo, bhi = b
    if op is CmpOp.LE:
        if ahi <= blo:
            return TRUE
        if alo > bhi:
            return FALSE
        return UNKNOWN
    if op is CmpOp.LT:
        if ahi < blo:
            return TRUE
        if alo >= bhi:
            return FALSE
        return UNKNOWN
    if op is CmpOp.GE:
        return _cmp_ranges(CmpOp.LE, b, a)
    if op is CmpOp.GT:
        return _cmp_ranges(CmpOp.LT, b, a)
    if op is CmpOp.EQ:
        if alo == ahi == blo == bhi:
            return TRUE
        if ahi < blo or bhi < alo:
            return FALSE
        return UNKNOWN
    # NE
    return _cmp_ranges(CmpOp.EQ, a, b).negate()


def _inset_range(arg: Range, values: frozenset[int]) -> Ternary:
    """Decide finite-set membership of a range."""
    lo, hi = arg
    width = hi - lo + 1
    if width <= len(values):
        # Small enough to check exhaustively whether the whole range is in.
        if all(v in values for v in range(lo, hi + 1)):
            return TRUE
    if not any(lo <= v <= hi for v in values):
        return FALSE
    if lo == hi:
        return from_bool(lo in values)
    return UNKNOWN


def eval_bool_abs(expr: BoolExpr, env: BoxEnv) -> Ternary:
    """Three-valued truth of ``expr`` over the box ``env``."""
    match expr:
        case BoolLit(value):
            return from_bool(value)
        case Cmp(op, left, right):
            return _cmp_ranges(op, eval_int_abs(left, env), eval_int_abs(right, env))
        case And(args):
            result = TRUE
            for arg in args:
                result = result.conj(eval_bool_abs(arg, env))
                if result is FALSE:
                    return FALSE
            return result
        case Or(args):
            result = FALSE
            for arg in args:
                result = result.disj(eval_bool_abs(arg, env))
                if result is TRUE:
                    return TRUE
            return result
        case Not(arg):
            return eval_bool_abs(arg, env).negate()
        case Implies(antecedent, consequent):
            return eval_bool_abs(antecedent, env).negate().disj(
                eval_bool_abs(consequent, env)
            )
        case Iff(left, right):
            a = eval_bool_abs(left, env)
            b = eval_bool_abs(right, env)
            if a is UNKNOWN or b is UNKNOWN:
                return UNKNOWN
            return from_bool(a is b)
        case InSet(arg, values):
            return _inset_range(eval_int_abs(arg, env), values)
        case _:
            raise TypeError(f"not a boolean expression: {expr!r}")


# ---------------------------------------------------------------------------
# Specialization: rebuild the formula with decided parts folded away
# ---------------------------------------------------------------------------


def specialize(expr: BoolExpr, env: BoxEnv) -> tuple[BoolExpr, Ternary]:
    """Evaluate and simultaneously shrink ``expr`` with respect to a box.

    Returns ``(expr', truth)`` where ``truth`` is the abstract truth value
    and ``expr'`` is equivalent to ``expr`` *on the box* but with decided
    sub-formulas replaced by literals.  Recursive descent then re-specializes
    ``expr'`` on sub-boxes, so work shrinks as the search narrows.
    """
    truth, rebuilt = _spec_bool(expr, env)
    return rebuilt, truth


def _spec_int(expr: IntExpr, env: BoxEnv) -> tuple[Range, IntExpr]:
    # Identity-preserving rebuilds: returning the original node when no
    # child changed keeps allocation (and GC pressure) proportional to the
    # amount of actual simplification — important in the splitting loops.
    match expr:
        case Lit(value):
            return (value, value), expr
        case Var(name):
            rng = env[name]
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            return rng, expr
        case Add(left, right):
            ra, ea = _spec_int(left, env)
            rb, eb = _spec_int(right, env)
            rng = interval.add(ra, rb)
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            if ea is left and eb is right:
                return rng, expr
            return rng, Add(ea, eb)
        case Sub(left, right):
            ra, ea = _spec_int(left, env)
            rb, eb = _spec_int(right, env)
            rng = interval.sub(ra, rb)
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            if ea is left and eb is right:
                return rng, expr
            return rng, Sub(ea, eb)
        case Neg(arg):
            ra, ea = _spec_int(arg, env)
            rng = interval.neg(ra)
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            return rng, (expr if ea is arg else Neg(ea))
        case Scale(coeff, arg):
            ra, ea = _spec_int(arg, env)
            rng = interval.scale(coeff, ra)
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            return rng, (expr if ea is arg else Scale(coeff, ea))
        case Abs(arg):
            ra, ea = _spec_int(arg, env)
            rng = interval.abs_(ra)
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            if ra[0] >= 0:
                return rng, ea  # abs is the identity here
            if ra[1] <= 0:
                return rng, Neg(ea)
            return rng, (expr if ea is arg else Abs(ea))
        case Min(left, right):
            ra, ea = _spec_int(left, env)
            rb, eb = _spec_int(right, env)
            if ra[1] <= rb[0]:
                return ra, ea
            if rb[1] <= ra[0]:
                return rb, eb
            rng = interval.min_(ra, rb)
            if ea is left and eb is right:
                return rng, expr
            return rng, Min(ea, eb)
        case Max(left, right):
            ra, ea = _spec_int(left, env)
            rb, eb = _spec_int(right, env)
            if ra[0] >= rb[1]:
                return ra, ea
            if rb[0] >= ra[1]:
                return rb, eb
            rng = interval.max_(ra, rb)
            if ea is left and eb is right:
                return rng, expr
            return rng, Max(ea, eb)
        case IntIte(cond, then_branch, else_branch):
            truth, econd = _spec_bool(cond, env)
            if truth is TRUE:
                return _spec_int(then_branch, env)
            if truth is FALSE:
                return _spec_int(else_branch, env)
            rt, et = _spec_int(then_branch, env)
            re_, ee = _spec_int(else_branch, env)
            rng = interval.join(rt, re_)
            if rng[0] == rng[1]:
                return rng, Lit(rng[0])
            if econd is cond and et is then_branch and ee is else_branch:
                return rng, expr
            return rng, IntIte(econd, et, ee)
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


def _spec_bool(expr: BoolExpr, env: BoxEnv) -> tuple[Ternary, BoolExpr]:
    match expr:
        case BoolLit(value):
            return from_bool(value), expr
        case Cmp(op, left, right):
            ra, ea = _spec_int(left, env)
            rb, eb = _spec_int(right, env)
            truth = _cmp_ranges(op, ra, rb)
            if truth.decided:
                return truth, BoolLit(truth.as_bool())
            if ea is left and eb is right:
                return truth, expr
            return truth, Cmp(op, ea, eb)
        case And(args):
            truth = TRUE
            kept: list[BoolExpr] = []
            unchanged = True
            for arg in args:
                t, e = _spec_bool(arg, env)
                if t is FALSE:
                    return FALSE, BoolLit(False)
                if t is UNKNOWN:
                    kept.append(e)
                    unchanged = unchanged and e is arg
                else:
                    unchanged = False
                truth = truth.conj(t)
            if truth is TRUE:
                return TRUE, BoolLit(True)
            if unchanged and len(kept) == len(args):
                return UNKNOWN, expr
            return UNKNOWN, kept[0] if len(kept) == 1 else And(tuple(kept))
        case Or(args):
            truth = FALSE
            kept = []
            unchanged = True
            for arg in args:
                t, e = _spec_bool(arg, env)
                if t is TRUE:
                    return TRUE, BoolLit(True)
                if t is UNKNOWN:
                    kept.append(e)
                    unchanged = unchanged and e is arg
                else:
                    unchanged = False
                truth = truth.disj(t)
            if truth is FALSE:
                return FALSE, BoolLit(False)
            if unchanged and len(kept) == len(args):
                return UNKNOWN, expr
            return UNKNOWN, kept[0] if len(kept) == 1 else Or(tuple(kept))
        case Not(arg):
            t, e = _spec_bool(arg, env)
            if t.decided:
                return t.negate(), BoolLit(not t.as_bool())
            return UNKNOWN, (expr if e is arg else Not(e))
        case Implies(antecedent, consequent):
            return _spec_bool(Or((Not(antecedent), consequent)), env)
        case Iff(left, right):
            ta, ea = _spec_bool(left, env)
            tb, eb = _spec_bool(right, env)
            if ta.decided and tb.decided:
                return from_bool(ta is tb), BoolLit(ta is tb)
            if ta.decided:
                return UNKNOWN, eb if ta is TRUE else Not(eb)
            if tb.decided:
                return UNKNOWN, ea if tb is TRUE else Not(ea)
            return UNKNOWN, Iff(ea, eb)
        case InSet(arg, values):
            ra, ea = _spec_int(arg, env)
            truth = _inset_range(ra, values)
            if truth.decided:
                return truth, BoolLit(truth.as_bool())
            live = frozenset(v for v in values if ra[0] <= v <= ra[1])
            if ea is arg and live == values:
                return UNKNOWN, expr
            return UNKNOWN, InSet(ea, live)
        case _:
            raise TypeError(f"not a boolean expression: {expr!r}")
