"""The paper's sections 2-3 narrative, asserted end to end.

Walks the exact storyline of the paper's overview: the ``nearby`` query,
its ind. sets, posteriors as intersections, and the three-downgrade trace
that ends in a policy violation — the closest thing to executing the
paper's prose.
"""

import pytest

from repro.core.plugin import CompileOptions, QueryRegistry, compile_query
from repro.domains.box import IntervalDomain
from repro.domains.interval import AInt
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import AnosyT, PolicyViolation
from repro.monad.policy import size_above
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime
from repro.refine.checker import verify_refinement
from repro.refine.spec import Refinement

USER_LOC = SecretSpec.declare("UserLoc", x=(0, 400), y=(0, 400))
NEARBY = parse_bool("abs(x - 200) + abs(y - 200) <= 100")


class TestSection22:
    """Section 2.2: the hand-written under-approximated ind. sets."""

    def test_papers_under_indset_verifies(self):
        # The paper's synthesized values: A [AInt 121 279, AInt 179 221]
        # for True and A [AInt 0 400, AInt 0 99] for False.
        true_side = IntervalDomain.from_aints(
            USER_LOC, [AInt(121, 279), AInt(179, 221)]
        )
        false_side = IntervalDomain.from_aints(
            USER_LOC, [AInt(0, 400), AInt(0, 99)]
        )
        assert verify_refinement(true_side, Refinement(positive=NEARBY)).verified
        assert verify_refinement(
            false_side, Refinement(positive=parse_bool("abs(x - 200) + abs(y - 200) > 100"))
        ).verified

    def test_papers_posterior_sizes(self):
        # Section 3's trace: |post1| = 6837 for the paper's True box.
        true_side = IntervalDomain.from_aints(
            USER_LOC, [AInt(121, 279), AInt(179, 221)]
        )
        assert true_side.size() == 6837

    def test_example_proof_term_domain(self):
        # Section 4.3's domEx = [(AInt 188 212), (AInt 112 288)] claims
        # every element is nearby (200, 200): |dx| <= 12, |dy| <= 88.
        dom_ex = IntervalDomain.from_aints(USER_LOC, [AInt(188, 212), AInt(112, 288)])
        assert verify_refinement(dom_ex, Refinement(positive=NEARBY)).verified


class TestSection23:
    """Section 2.3: the synthesized constraints and their solutions."""

    def test_synthesized_boxes_satisfy_the_smt_constraints(self):
        compiled = compile_query("nearby", NEARBY, USER_LOC)
        under_true, under_false = compiled.qinfo.under_indset
        # (Under-approx, True): all points satisfy nearby.
        for point in list(under_true.box.iter_points())[::97]:
            assert compiled.qinfo.run(point) is True
        # (Under-approx, False): all points falsify nearby.
        for point in list(under_false.box.iter_points())[::97]:
            assert compiled.qinfo.run(point) is False

    def test_pareto_preference(self):
        # "if two domains of sizes 400x1 and 20x20 are valid solutions,
        # Anosy will prefer the latter" — our balanced growth produces a
        # square for the diamond's inscribed box.
        compiled = compile_query("nearby", NEARBY, USER_LOC)
        widths = compiled.qinfo.under_indset[0].box.widths()
        assert max(widths) / min(widths) < 2


class TestSection3Trace:
    """The downgrade trace: (300,200), three queries, then a violation."""

    @pytest.fixture
    def registry(self):
        registry = QueryRegistry()
        options = CompileOptions(modes=("under",))
        for ox in (200, 300, 400):
            registry.compile_and_register(
                f"nearby ({ox},200)",
                parse_bool(f"abs(x - {ox}) + abs(y - 200) <= 100"),
                USER_LOC,
                options,
            )
        return registry

    def test_trace(self, registry):
        session = AnosyT(SecureRuntime(), size_above(100), registry)
        secret = ProtectedSecret.seal(USER_LOC, (300, 200))

        # secrets map starts empty
        assert session.knowledge_of(secret) is None

        r1 = session.downgrade(secret, "nearby (200,200)")
        assert r1 is True  # (300,200) is at distance exactly 100
        post1 = session.knowledge_of(secret)
        assert post1.size() > 100

        r2 = session.downgrade(secret, "nearby (300,200)")
        assert r2 is True
        post2 = session.knowledge_of(secret)
        assert post2.size() < post1.size()

        with pytest.raises(PolicyViolation, match="Policy Violation"):
            session.downgrade(secret, "nearby (400,200)")
        # knowledge unchanged by the refused query
        assert session.knowledge_of(secret).size() == post2.size()
