"""``IterSynth``: iterative synthesis of powerset domains (Algorithm 1).

Powersets of ``k`` intervals are synthesized one interval at a time, to
avoid the scalability cliff of optimizing many boxes jointly (the paper
observed Z3 degrading beyond ~6 joint objectives):

* **under-approximation** — each iteration synthesizes a maximal box inside
  the query region *minus the boxes found so far*, growing the include
  list ``dom_i``; the boxes are disjoint by construction.
* **over-approximation** — iteration 1 synthesizes the minimal bounding
  box; later iterations carve maximal boxes of *non*-satisfying points out
  of it, growing the exclude list ``dom_o`` (again pairwise disjoint).

Iteration stops early when the residue region is exhausted — e.g. if the
exact ind. set is a union of 2 boxes, ``k=3`` synthesis returns after 2.

All iterations share **one** solver engine: the query is lowered into
compiled kernels once, and each iteration's residue formula reuses the
already-compiled query sub-kernels (the region conjuncts are the only new
nodes), so the whole powerset pays a single lowering.

Iterations also **seed incrementally** (``SynthOptions.incremental_seed``,
on by default): each accepted box is carved out of a running disjoint
decomposition of the search space, and the next iteration's maximal-box
seed search starts from those residue pieces instead of the root box.
The exclusion conjuncts are false on every carved-out box, so restricting
the search to the residue is exact — later iterations simply skip
re-splitting through regions they could never accept, and the residual
kernels their piece boundaries produce are exactly the (hash-consed,
memoized) residuals the previous iteration already compiled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import BoolExpr, Not
from repro.lang.secrets import SecretSpec
from repro.lang.transform import conjoin, nnf
from repro.domains.powerset import PowersetDomain
from repro.core.synth import SynthOptions, SynthResult, synth_interval
from repro.solver.boxes import Box, subtract_box
from repro.solver.decide import SolverStats, make_engine
from repro.solver.optimize import build_region_oracle
from repro.solver.regions import box_formula, outside_boxes_formula

__all__ = ["IterSynthResult", "iter_synth_powerset"]


@dataclass(frozen=True)
class IterSynthResult:
    """A synthesized powerset plus synthesis metadata."""

    domain: PowersetDomain
    elapsed: float
    timed_out: bool
    iterations: int
    #: Aggregate solver counters across all iterations.
    stats: SolverStats | None = None


def iter_synth_powerset(
    query: BoolExpr,
    secret: SecretSpec,
    *,
    k: int,
    mode: str,
    polarity: bool,
    options: SynthOptions = SynthOptions(),
    engine=None,
    oracle=None,
) -> IterSynthResult:
    """Algorithm 1: synthesize a powerset of at most ``k`` intervals.

    ``oracle`` optionally shares one precomputed
    :class:`~repro.solver.optimize.RegionOracle` for the *positive*
    query (the compile step passes one per compile); otherwise one is
    built here when affordable, so every iteration, polarity and mode of
    this call pays a single grid evaluation.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if mode not in ("under", "over"):
        raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
    if engine is None:
        engine = make_engine(
            secret.field_names, options.use_kernels,
            legacy_splits=options.legacy_splits,
        )
    if oracle is None:
        oracle = build_region_oracle(
            query,
            Box(secret.bounds()),
            secret.field_names,
            options.optimizer_options(),
            engine=engine,
        )
    stats = SolverStats()
    start = time.perf_counter()
    if mode == "under":
        result = _iter_under(
            query, secret, k, polarity, options, engine, stats, oracle
        )
    else:
        result = _iter_over(
            query, secret, k, polarity, options, engine, stats, oracle
        )
    elapsed = time.perf_counter() - start
    return IterSynthResult(
        domain=result[0],
        elapsed=elapsed,
        timed_out=result[1],
        iterations=result[2],
        stats=stats,
    )


def _collect(stats: SolverStats, piece: SynthResult) -> SynthResult:
    if piece.stats is not None:
        stats.merge(piece.stats)
    return piece


def _carve(pieces: list[Box], box: Box) -> list[Box]:
    """Remove ``box`` from a disjoint decomposition, keeping it disjoint."""
    return [part for piece in pieces for part in subtract_box(piece, box)]


def _iter_under(
    query: BoolExpr,
    secret: SecretSpec,
    k: int,
    polarity: bool,
    options: SynthOptions,
    engine,
    stats: SolverStats,
    oracle=None,
) -> tuple[PowersetDomain, bool, int]:
    names = secret.field_names
    include: list[Box] = []
    timed_out = False
    # Disjoint residue pieces of the space: the warm seeds of the next
    # iteration's maximal-box search (exact — see module docstring).
    pieces: list[Box] = [Box(secret.bounds())]
    for _ in range(k):
        region = outside_boxes_formula(include, names) if include else None
        # The oracle view mirrors the region conjuncts geometrically:
        # ``outside(include)`` becomes an exact avoid-list subtraction.
        view = oracle
        if view is not None and include:
            view = view.restrict(avoid=tuple(include))
        piece = _collect(
            stats,
            synth_interval(
                query,
                secret,
                mode="under",
                polarity=polarity,
                region=region,
                options=options,
                engine=engine,
                seed_boxes=pieces if options.incremental_seed and include else None,
                oracle=view,
            ),
        )
        timed_out = timed_out or piece.timed_out
        if piece.domain.box is None:
            break  # residue region exhausted: the powerset is exact
        include.append(piece.domain.box)
        if options.incremental_seed:
            pieces = _carve(pieces, piece.domain.box)
    return PowersetDomain(secret, tuple(include), ()), timed_out, len(include)


def _iter_over(
    query: BoolExpr,
    secret: SecretSpec,
    k: int,
    polarity: bool,
    options: SynthOptions,
    engine,
    stats: SolverStats,
    oracle=None,
) -> tuple[PowersetDomain, bool, int]:
    names = secret.field_names
    cover = _collect(
        stats,
        synth_interval(
            query, secret, mode="over", polarity=polarity, options=options,
            engine=engine, oracle=oracle,
        ),
    )
    if cover.domain.box is None:
        # Empty region: ⊥ is the exact over-approximation.
        return PowersetDomain.bottom(secret), cover.timed_out, 1

    outer = cover.domain.box
    timed_out = cover.timed_out
    exclude: list[Box] = []
    complement = nnf(Not(query if polarity else nnf(Not(query))))
    # The holes target the complement of the cover's target; the oracle
    # view applies the same negation, plus ``inside(outer)`` /
    # ``outside(exclude)`` as geometry.  The hole calls pass
    # ``polarity=True``, so ``synth_interval`` leaves the view as-is.
    hole_base = None
    if oracle is not None:
        hole_base = (oracle if polarity else oracle.negated()).negated()
    # Hole-carving is confined to the cover from the start, so even the
    # first hole iteration seeds from ``outer`` rather than the space.
    pieces: list[Box] = [outer]
    for _ in range(k - 1):
        region_parts: list[BoolExpr] = [box_formula(outer, names)]
        if exclude:
            region_parts.append(outside_boxes_formula(exclude, names))
        view = None
        if hole_base is not None:
            view = hole_base.restrict(within=outer, avoid=tuple(exclude))
        hole = _collect(
            stats,
            synth_interval(
                complement,
                secret,
                mode="under",
                polarity=True,
                region=conjoin(region_parts),
                options=options,
                engine=engine,
                seed_boxes=pieces if options.incremental_seed else None,
                oracle=view,
            ),
        )
        timed_out = timed_out or hole.timed_out
        if hole.domain.box is None:
            break  # no non-satisfying points left inside the cover
        exclude.append(hole.domain.box)
        if options.incremental_seed:
            pieces = _carve(pieces, hole.domain.box)
    return (
        PowersetDomain(secret, (outer,), tuple(exclude)),
        timed_out,
        1 + len(exclude),
    )
