"""A mini-LIO: the underlying ``Secure`` monad ANOSY is staged on.

LIO (Stefan et al., Haskell 2011) enforces IFC dynamically with a
*current label* that floats up as secrets are observed, bounded by a
*clearance*.  This module reproduces the part of that interface ANOSY
relies on:

* :class:`Labeled` — a value boxed with its security label;
* :class:`SecureRuntime` — the monadic context: ``label`` to box values,
  ``unlabel`` to observe them (raising the current label), ``to_labeled``
  to scope sensitive computations, and the TCB-only ``unlabel_tcb`` that
  bypasses the floating check (the paper's ``unlabelTCB``, the dangerous
  primitive ``downgrade`` wraps safely).

Python cannot statically prevent code from touching ``unlabel_tcb``; as in
LIO, the ``_tcb`` suffix marks the trusted computing base, and the
``AnosyT`` layer is the only in-repo caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.monad.labels import Label, PUBLIC, SECRET

__all__ = ["IFCViolation", "Labeled", "SecureRuntime"]

T = TypeVar("T")
R = TypeVar("R")


class IFCViolation(Exception):
    """An information-flow violation caught by the runtime."""


@dataclass(frozen=True)
class Labeled(Generic[T]):
    """A value protected by a security label.

    The payload is intentionally stored in a name-mangled attribute: any
    access outside this module is a grep-visible TCB breach, mirroring the
    module-abstraction guarantee of the Haskell original.
    """

    label: Label
    _value_tcb: T

    def value_tcb(self) -> T:
        """Trusted-computing-base access: bypasses all checks."""
        return self._value_tcb

    def relabel_tcb(self, label: Label) -> "Labeled[T]":
        """TCB-only: rewrap the payload at a different label."""
        return Labeled(label, self._value_tcb)

    def __repr__(self) -> str:
        return f"Labeled({self.label!r}, <protected>)"


class SecureRuntime:
    """The LIO-style monadic context with a floating current label."""

    def __init__(
        self,
        current: Label = PUBLIC,
        clearance: Label = SECRET,
    ):
        if not current.can_flow_to(clearance):
            raise IFCViolation(
                f"initial label {current!r} above clearance {clearance!r}"
            )
        self._current = current
        self._clearance = clearance

    # -- observation of the context ---------------------------------------
    @property
    def current_label(self) -> Label:
        """The context's current label (taints every observation so far)."""
        return self._current

    @property
    def clearance(self) -> Label:
        """The ceiling the current label may float to."""
        return self._clearance

    # -- core LIO operations -----------------------------------------------
    def label(self, label: Label, value: T) -> Labeled[T]:
        """Box ``value`` at ``label``; requires current ⊑ label ⊑ clearance.

        The lower bound stops a tainted context from laundering what it has
        observed into a less-secret box.
        """
        if not self._current.can_flow_to(label):
            raise IFCViolation(
                f"cannot label below the current label: {self._current!r} ⋢ "
                f"{label!r}"
            )
        if not label.can_flow_to(self._clearance):
            raise IFCViolation(
                f"label {label!r} exceeds clearance {self._clearance!r}"
            )
        return Labeled(label, value)

    def unlabel(self, boxed: Labeled[T]) -> T:
        """Open a box, raising the current label to its join.

        Fails when the raised label would exceed clearance — the context is
        not allowed to observe data this secret.
        """
        raised = self._current.join(boxed.label)
        if not raised.can_flow_to(self._clearance):
            raise IFCViolation(
                f"unlabel would raise {raised!r} above clearance "
                f"{self._clearance!r}"
            )
        self._current = raised
        return boxed.value_tcb()

    def unlabel_tcb(self, boxed: Labeled[T]) -> T:
        """The paper's ``unlabelTCB``: observe without raising the label.

        This is the *downgrade* primitive — anything computed from the
        result is no longer tracked.  Only :mod:`repro.monad.anosy` calls
        it, and only after the quantitative policy check has passed.
        """
        return boxed.value_tcb()

    def to_labeled(self, label: Label, thunk: Callable[[], T]) -> Labeled[T]:
        """Run ``thunk`` in a scoped context; box its result at ``label``.

        The current label is restored afterwards, so secrets observed by
        the thunk do not taint the caller — the standard LIO pattern for
        computing over secrets without floating the whole program up.
        """
        saved = self._current
        try:
            result = thunk()
            inner = self._current
        finally:
            self._current = saved
        if not inner.can_flow_to(label):
            raise IFCViolation(
                f"toLabeled result tainted at {inner!r}, cannot box at {label!r}"
            )
        if not label.can_flow_to(self._clearance):
            raise IFCViolation(
                f"label {label!r} exceeds clearance {self._clearance!r}"
            )
        return Labeled(label, result)

    def taint(self, label: Label) -> None:
        """Raise the current label (observing an implicit flow)."""
        raised = self._current.join(label)
        if not raised.can_flow_to(self._clearance):
            raise IFCViolation(
                f"taint would raise {raised!r} above clearance "
                f"{self._clearance!r}"
            )
        self._current = raised
