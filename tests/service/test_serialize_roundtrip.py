"""Regression net for the artifact codecs and the v2 cache key.

The serving runtime trusts these codecs twice over: the store persists
exactly what they emit, and worker processes ship artifacts through them.
A field silently dropped on decode would quietly corrupt warm-started
proofs or stats, so every dataclass field is checked *by introspection* —
a field added to :class:`~repro.core.plugin.ModeReport`,
:class:`~repro.refine.checker.Certificate`,
:class:`~repro.core.plugin.CompileOptions`, or
:class:`~repro.core.synth.SynthOptions` without codec (and cache-key)
support fails here, not in production.
"""

import dataclasses
import json

from repro.core.plugin import CompileOptions, ModeReport, compile_query
from repro.core.synth import SynthOptions
from repro.lang.secrets import SecretSpec
from repro.refine.checker import Certificate, CheckOutcome
from repro.service.cache import cache_key
from repro.service.serialize import (
    compiled_query_from_json,
    compiled_query_to_json,
    options_from_json,
    options_to_json,
)

SPEC = SecretSpec.declare("Tiny", x=(0, 15), y=(0, 15))
OPTIONS = CompileOptions(domain="powerset", k=2, modes=("under", "over"))
QUERY = "abs(x - 8) + abs(y - 8) <= 5"


def _sentinel_for(field: dataclasses.Field, index: int):
    """A distinctive, type-correct value for one dataclass field."""
    if field.type in ("int", int):
        return 1000 + index
    if field.type in ("float", float):
        return 0.5 + index
    if field.type in ("bool", bool):
        return True
    if field.type in ("str", str):
        return f"sentinel-{index}"
    raise AssertionError(
        f"add a sentinel rule for new field {field.name!r}: {field.type!r}"
    )


def test_compiled_query_roundtrips_exactly():
    compiled = compile_query("q", QUERY, SPEC, OPTIONS)
    data = json.loads(json.dumps(compiled_query_to_json(compiled)))
    restored = compiled_query_from_json(data)
    assert restored.qinfo == compiled.qinfo
    assert restored.reports == compiled.reports
    assert restored.validation == compiled.validation


def test_mode_report_fields_all_roundtrip():
    """Every scalar ModeReport field — including the PR 3 stats
    ``fused_rounds``/``probe_fronts``/``front_boxes`` — survives exactly."""
    compiled = compile_query("q", QUERY, SPEC, OPTIONS)
    report = compiled.reports["under"]
    scalars = [
        f
        for f in dataclasses.fields(ModeReport)
        if f.type in ("int", "float", "bool", int, float, bool)
    ]
    assert {f.name for f in scalars} >= {
        "synth_time",
        "verify_time",
        "timed_out",
        "solver_nodes",
        "solver_splits",
        "vector_boxes",
        "fused_rounds",
        "probe_fronts",
        "front_boxes",
    }
    poisoned = dataclasses.replace(
        report,
        **{f.name: _sentinel_for(f, i) for i, f in enumerate(scalars)},
    )
    compiled = dataclasses.replace(compiled, reports={"under": poisoned})
    restored = compiled_query_from_json(
        json.loads(json.dumps(compiled_query_to_json(compiled)))
    )
    for f in scalars:
        assert getattr(restored.reports["under"], f.name) == getattr(
            poisoned, f.name
        ), f"ModeReport.{f.name} dropped or mangled by the codec"


def test_certificate_fields_all_roundtrip():
    compiled = compile_query("q", QUERY, SPEC, OPTIONS)
    report = compiled.reports["under"]
    assert report.true_outcome is not None
    cert = report.true_outcome.certificates[0]
    fields = dataclasses.fields(Certificate)
    poisoned = dataclasses.replace(
        cert, **{f.name: _sentinel_for(f, i) for i, f in enumerate(fields)}
    )
    outcome = CheckOutcome((poisoned,))
    compiled = dataclasses.replace(
        compiled,
        reports={"under": dataclasses.replace(report, true_outcome=outcome)},
    )
    restored = compiled_query_from_json(
        json.loads(json.dumps(compiled_query_to_json(compiled)))
    )
    restored_cert = restored.reports["under"].true_outcome.certificates[0]
    for f in fields:
        assert getattr(restored_cert, f.name) == getattr(
            poisoned, f.name
        ), f"Certificate.{f.name} dropped or mangled by the codec"


def test_options_roundtrip_covers_every_field():
    options = CompileOptions(
        domain="powerset",
        k=5,
        modes=("over",),
        verify=False,
        synth=SynthOptions(
            time_budget=None,
            seed_pops=123,
            growth="lexicographic",
            use_kernels=False,
            vector_threshold=7,
            fused_probes=False,
            incremental_seed=False,
            legacy_splits=True,
        ),
    )
    assert options_from_json(json.loads(json.dumps(options_to_json(options)))) == options
    # Defaults round-trip too (None/None for the optional knobs).
    assert options_from_json(options_to_json(CompileOptions())) == CompileOptions()
    # The codec names every field of both dataclasses.
    payload = options_to_json(CompileOptions())
    top = {f.name for f in dataclasses.fields(CompileOptions)} - {"synth"}
    assert top <= set(payload)
    synth = {f.name for f in dataclasses.fields(SynthOptions)}
    assert synth <= set(payload["synth"])


def _flip(options: CompileOptions, field_name: str) -> CompileOptions:
    """A copy of ``options`` with one (possibly nested) field changed."""
    alternates = {
        "domain": "powerset",
        "k": 9,
        "modes": ("under",),
        "verify": False,
        "time_budget": 3.25,
        "seed_pops": 777,
        "growth": "lexicographic",
        "use_kernels": False,
        "vector_threshold": 5,
        "fused_probes": False,
        "incremental_seed": False,
        "legacy_splits": True,
    }
    value = alternates[field_name]
    if field_name in {f.name for f in dataclasses.fields(CompileOptions)}:
        return dataclasses.replace(options, **{field_name: value})
    return dataclasses.replace(
        options, synth=dataclasses.replace(options.synth, **{field_name: value})
    )


def test_cache_key_is_sensitive_to_every_synthesis_knob():
    """The v2 cache key must change when any compile knob changes —
    including the PR 3 additions ``fused_probes``/``incremental_seed``."""
    base = CompileOptions()
    query = "x <= 7"
    baseline = cache_key(_parse(query), SPEC, base)
    knobs = [f.name for f in dataclasses.fields(CompileOptions) if f.name != "synth"]
    knobs += [f.name for f in dataclasses.fields(SynthOptions)]
    for knob in knobs:
        flipped = cache_key(_parse(query), SPEC, _flip(base, knob))
        assert flipped != baseline, f"cache key ignores option {knob!r}"
    # And to the semantic inputs themselves.
    assert cache_key(_parse("x <= 8"), SPEC, base) != baseline
    other_spec = SecretSpec.declare("Tiny", x=(0, 15), y=(0, 16))
    assert cache_key(_parse(query), other_spec, base) != baseline
    # But NOT to alpha-equivalent reorderings (that is the whole point).
    assert (
        cache_key(_parse("(x + y) <= 7"), SPEC, base)
        == cache_key(_parse("(y + x) <= 7"), SPEC, base)
    )


def _parse(text: str):
    from repro.lang.parser import parse_bool

    return parse_bool(text)
