"""Dynamic policy enforcement on top of ``AnosyT``.

Section 8 of the paper: "dynamic security policies can be enforced by
keeping track of attacker knowledge and comparing it with the current
policy".  Because ``AnosyT`` already maintains a per-secret knowledge
map, switching policies mid-execution reduces to re-checking that map
against the incoming policy — which is what :class:`DynamicAnosy` does.

A policy switch is *rejected* when some already-accumulated knowledge
violates the new policy (the alternative — accepting the switch — would
retroactively bless a leak the new policy forbids).  Callers who want the
permissive behaviour can inspect the returned violations and force the
switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.secrets import SecretValue
from repro.monad.anosy import AnosyT, DowngradeDecision
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import Unprotectable

__all__ = ["PolicySwitch", "DynamicAnosy"]


@dataclass(frozen=True)
class PolicySwitch:
    """The outcome of attempting a policy change."""

    accepted: bool
    violations: tuple[tuple[str, SecretValue], ...]
    policy_name: str


@dataclass
class DynamicAnosy:
    """An ``AnosyT`` session whose policy can change over time."""

    session: AnosyT
    switches: list[PolicySwitch] = field(default_factory=list)

    @property
    def current_policy(self) -> QuantitativePolicy:
        """The policy currently enforced on downgrades."""
        return self.session.policy

    def downgrade(self, protected: Unprotectable, query_name: str) -> bool:
        """Bounded downgrade under the current policy."""
        return self.session.downgrade(protected, query_name)

    def try_downgrade(
        self, protected: Unprotectable, query_name: str
    ) -> DowngradeDecision:
        """Non-raising bounded downgrade under the current policy."""
        return self.session.try_downgrade(protected, query_name)

    def switch_policy(
        self, policy: QuantitativePolicy, *, force: bool = False
    ) -> PolicySwitch:
        """Install a new policy after auditing the accumulated knowledge.

        Every tracked secret's knowledge is checked against the incoming
        policy; violations abort the switch unless ``force`` is set.
        """
        violations = tuple(
            key
            for key, knowledge in self.session.secrets.items()
            if not policy(knowledge)
        )
        accepted = force or not violations
        if accepted:
            self.session.policy = policy
        switch = PolicySwitch(
            accepted=accepted,
            violations=violations,
            policy_name=policy.name,
        )
        self.switches.append(switch)
        return switch
