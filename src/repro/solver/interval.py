"""Exact interval arithmetic on integer ranges.

Ranges are plain ``(lo, hi)`` tuples with ``lo <= hi``.  Every operation
returns the *tightest* range containing all pointwise results — interval
arithmetic is exact per operation; imprecision only arises when a variable
occurs more than once in an expression (e.g. ``x - x``), which the solver
resolves by splitting.
"""

from __future__ import annotations

__all__ = [
    "Range",
    "add",
    "sub",
    "neg",
    "scale",
    "abs_",
    "min_",
    "max_",
    "join",
    "meet",
]

Range = tuple[int, int]


def add(a: Range, b: Range) -> Range:
    """Pointwise sum: ``[a.lo + b.lo, a.hi + b.hi]``."""
    return (a[0] + b[0], a[1] + b[1])


def sub(a: Range, b: Range) -> Range:
    """Pointwise difference: ``[a.lo - b.hi, a.hi - b.lo]``."""
    return (a[0] - b[1], a[1] - b[0])


def neg(a: Range) -> Range:
    """Pointwise negation."""
    return (-a[1], -a[0])


def scale(coeff: int, a: Range) -> Range:
    """Multiplication by a constant (sign decides which bound flips)."""
    if coeff >= 0:
        return (coeff * a[0], coeff * a[1])
    return (coeff * a[1], coeff * a[0])


def abs_(a: Range) -> Range:
    """Pointwise absolute value."""
    lo, hi = a
    if lo >= 0:
        return a
    if hi <= 0:
        return (-hi, -lo)
    return (0, max(-lo, hi))


def min_(a: Range, b: Range) -> Range:
    """Pointwise minimum."""
    return (min(a[0], b[0]), min(a[1], b[1]))


def max_(a: Range, b: Range) -> Range:
    """Pointwise maximum."""
    return (max(a[0], b[0]), max(a[1], b[1]))


def join(a: Range, b: Range) -> Range:
    """Convex hull (least range containing both)."""
    return (min(a[0], b[0]), max(a[1], b[1]))


def meet(a: Range, b: Range) -> Range | None:
    """Intersection, or ``None`` when disjoint."""
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    if lo > hi:
        return None
    return (lo, hi)
