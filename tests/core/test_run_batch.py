"""``QInfo.run_batch``: the vectorized query kernel vs scalar ``run``.

The fleet tick answers a whole batch of sessions with one grid-kernel
evaluation over SoA secret columns; every row must agree with the
per-secret concrete kernel, including for constant queries (whose grid
kernels collapse to a scalar bool that must broadcast back out).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qinfo import QInfo
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.solver.vectoreval import AVAILABLE

from tests.strategies import bool_exprs

pytestmark = pytest.mark.skipif(not AVAILABLE, reason="NumPy not installed")

SPEC = SecretSpec.declare("BatchRun", x=(-8, 12), y=(0, 15))


def _qinfo(query):
    if isinstance(query, str):
        query = parse_bool(query)
    return QInfo("q", query, SPEC, under_indset=None, over_indset=None)


def _rows(points):
    import numpy as np

    return np.asarray(points, dtype=np.int64)


class TestRunBatchParity:
    @settings(deadline=None)
    @given(
        query=bool_exprs(("x", "y")),
        points=st.lists(
            st.tuples(st.integers(-8, 12), st.integers(0, 15)),
            min_size=1,
            max_size=12,
        ),
    )
    def test_rows_match_scalar_run(self, query, points):
        qinfo = _qinfo(query)
        got = qinfo.run_batch(_rows(points))
        assert got.dtype == bool
        assert got.tolist() == [qinfo.run(p) for p in points]

    @pytest.mark.parametrize("source", ["1 <= 2", "1 > 2", "x != x"])
    def test_constant_queries_broadcast(self, source):
        qinfo = _qinfo(source)
        points = [(0, 0), (5, 5), (-3, 15)]
        got = qinfo.run_batch(_rows(points))
        assert got.shape == (3,)
        assert got.tolist() == [qinfo.run(p) for p in points]

    def test_kernel_is_pinned_once(self):
        qinfo = _qinfo("x + y <= 3")
        qinfo.run_batch(_rows([(0, 0)]))
        kernel = qinfo.__dict__["_grid_kernel"]
        qinfo.run_batch(_rows([(1, 1), (2, 2)]))
        assert qinfo.__dict__["_grid_kernel"] is kernel
