"""The persistent artifact store: compiled queries that survive restarts.

A serving fleet cannot afford to re-run synthesis because a process was
rescheduled.  :class:`SQLiteStore` is a durable, content-addressed table of
compiled-query artifacts that speaks the existing cache vocabulary — keys
are :func:`~repro.service.cache.cache_key` hashes, payloads are
:func:`~repro.service.serialize.compiled_query_to_json` encodings, and the
file records :data:`~repro.service.cache.CACHE_FORMAT_VERSION` so a store
written by an incompatible codec fails loudly instead of deserializing
garbage proofs.

It implements the :class:`~repro.service.cache.CacheBackend` protocol, so
``SynthesisCache(backend=SQLiteStore(path))`` warm-starts a whole process:
every artifact ever served by any shard is decoded into memory on boot and
every new compile is written through.  :meth:`export_cache_json` /
:meth:`import_cache_json` interoperate with the flat-file format of
:meth:`SynthesisCache.save <repro.service.cache.SynthesisCache.save>`, so
existing warm-start files migrate into a store (and back) losslessly.

The store also implements the :class:`~repro.server.ledger.LedgerBackend`
protocol in a second table, ``ledger_bounds``: per ``(user, spec)``
knowledge-bound payloads written through on every ledger commit and
reloaded when a ledger attaches.  Budgets and artifacts thereby share one
durability story — a restart that keeps warm artifacts keeps the budgets
charged for them, closing the budget-laundering hole a memory-only ledger
leaves open.  The ledger payload codec is versioned independently of the
artifact codec (``ledger_format_version`` in the ``meta`` table); a store
written before the ledger table existed adopts the current version on
first open.

A third table, ``request_journal``, makes the store the gateway's
write-ahead log (the :class:`~repro.server.journal.JournalBackend`
protocol): every state-changing request is appended — idempotency key,
monotone sequence number, payload — *before* it executes and
acknowledged with its outcome digest after the durable-mirror fold.
Crash recovery and deterministic replay both read this table; like the
ledger table it is independently format-versioned
(``journal_format_version``) and adopted on first open by older stores.
``audit_spill`` holds audit events evicted from the bounded in-memory
ring, so the full dense-sequence audit history survives even under
serving loads the ring cannot hold.

Hardening (file-backed stores): WAL journaling so readers never block the
writer, a bounded busy-retry with backoff around every write (a
transiently locked file — another process compacting, a backup tool —
must not crash the gateway), an automatic pre-compaction backup, and a
corruption path (:meth:`quick_check` / :meth:`recover`) that quarantines
a damaged file and rebuilds instead of serving garbage.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import NULL_REGISTRY
from repro.server import faults
from repro.server.journal import JOURNAL_FORMAT_VERSION
from repro.server.ledger import LEDGER_FORMAT_VERSION
from repro.service.cache import CACHE_FORMAT_VERSION

__all__ = ["StoreFormatError", "SQLiteStore"]


class StoreFormatError(RuntimeError):
    """The store was written by an incompatible artifact codec."""


class SQLiteStore:
    """A durable content-addressed store of compiled-query payloads.

    Safe for concurrent use from one process (one lock around the shared
    connection); concurrent *processes* are serialized by SQLite itself.
    ``path`` may be ``":memory:"`` for tests.
    """

    #: Bounded busy-retry around writes: attempts and base backoff.
    busy_retries = 5
    busy_backoff = 0.01

    def __init__(self, path: str | Path, *, timeout: float = 10.0):
        self.path = str(path)
        #: Busy-retry telemetry sink; a gateway adopting this store
        #: swaps in its hub's registry.
        self.metrics: Any = NULL_REGISTRY
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        try:
            if self.path != ":memory:":
                # WAL: readers never block the writer, and an abrupt
                # process death leaves a replayable log, not a torn page.
                with self._lock:
                    self._conn.execute("PRAGMA journal_mode=WAL")
            with self._lock, self._conn:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT)"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS artifacts ("
                    "  key TEXT PRIMARY KEY,"
                    "  payload TEXT NOT NULL,"
                    "  created_at REAL NOT NULL"
                    ")"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS ledger_bounds ("
                    "  user_id TEXT NOT NULL,"
                    "  spec TEXT NOT NULL,"
                    "  payload TEXT NOT NULL,"
                    "  updated_at REAL NOT NULL,"
                    "  PRIMARY KEY (user_id, spec)"
                    ")"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS request_journal ("
                    "  seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                    "  idem_key TEXT NOT NULL UNIQUE,"
                    "  kind TEXT NOT NULL,"
                    "  payload TEXT NOT NULL,"
                    "  status TEXT NOT NULL DEFAULT 'pending',"
                    "  outcome_digest TEXT,"
                    "  response TEXT,"
                    "  created_at REAL NOT NULL,"
                    "  acked_at REAL"
                    ")"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS audit_spill ("
                    "  seq INTEGER PRIMARY KEY,"
                    "  kind TEXT NOT NULL,"
                    "  data TEXT NOT NULL,"
                    "  spilled_at REAL NOT NULL"
                    ")"
                )
                self._check_version("format_version", CACHE_FORMAT_VERSION)
                # Pre-ledger/pre-journal stores (no such meta row) adopt
                # the current version: the tables above were just
                # created empty.
                self._check_version("ledger_format_version", LEDGER_FORMAT_VERSION)
                self._check_version("journal_format_version", JOURNAL_FORMAT_VERSION)
        except BaseException:
            # Refusing an incompatible store must not leak its handle.
            self._conn.close()
            raise

    def _write_txn(self, fn):
        """One durable transaction, retried through ``database is locked``.

        SQLite raises ``OperationalError: database is locked`` when
        another connection holds the write lock past ``timeout``.  That
        is a transient condition, not a bug: back off exponentially for
        up to :attr:`busy_retries` attempts before letting it propagate.
        The chaos hook (:func:`repro.server.faults.maybe_db_locked`)
        fires *inside* the loop so injected lock storms are absorbed the
        same way real ones are.  *fn* runs with the lock and an open
        transaction and must be safe to re-run (every caller's is:
        plain INSERT/UPDATE/DELETE statements).
        """
        for attempt in range(self.busy_retries + 1):
            try:
                with self._lock, self._conn:
                    faults.maybe_db_locked("store.write")
                    return fn(self._conn)
            except sqlite3.OperationalError as exc:
                if "locked" not in str(exc) or attempt >= self.busy_retries:
                    raise
                metrics = self.metrics
                if metrics:
                    metrics.counter(
                        "anosy_store_busy_retries_total",
                        "SQLite database-is-locked retries absorbed by the "
                        "bounded backoff loop.",
                    ).inc()
                time.sleep(self.busy_backoff * (2**attempt))

    def _execute_write(self, sql: str, params: tuple) -> None:
        """One durable single-statement write (see :meth:`_write_txn`)."""
        self._write_txn(lambda conn: conn.execute(sql, params))

    def _check_version(self, key: str, expected: int) -> None:
        """Record or verify one ``meta`` version row (absent = adopt)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                (key, str(expected)),
            )
        elif int(row[0]) != expected:
            raise StoreFormatError(
                f"store {self.path!r} has {key} {row[0]}, "
                f"this codec speaks {expected}"
            )

    # -- CacheBackend protocol ---------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored artifact payload for a key, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Durably store a payload under its content hash (last write wins)."""
        blob = json.dumps(payload, sort_keys=True)
        self._execute_write(
            "INSERT OR REPLACE INTO artifacts (key, payload, created_at) "
            "VALUES (?, ?, ?)",
            (key, blob, time.time()),
        )

    def keys(self) -> Iterator[str]:
        """The stored keys (insertion order)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM artifacts ORDER BY created_at, key"
            ).fetchall()
        return iter(row[0] for row in rows)

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """All ``(key, payload)`` pairs in one scan (the warm-start read)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, payload FROM artifacts ORDER BY created_at, key"
            ).fetchall()
        return iter((key, json.loads(blob)) for key, blob in rows)

    # -- LedgerBackend protocol ---------------------------------------------
    def put_ledger_bound(
        self, user_id: str, spec_name: str, payload: dict[str, Any]
    ) -> None:
        """Durably store one user's knowledge-bound payload for one spec.

        Written through by :meth:`PrivacyBudgetLedger.commit
        <repro.server.ledger.PrivacyBudgetLedger.commit>` (and epoch
        decay); last write wins, exactly like artifacts.
        """
        blob = json.dumps(payload, sort_keys=True)
        self._execute_write(
            "INSERT OR REPLACE INTO ledger_bounds "
            "(user_id, spec, payload, updated_at) VALUES (?, ?, ?, ?)",
            (user_id, spec_name, blob, time.time()),
        )

    def ledger_bounds(self) -> Iterator[tuple[str, str, dict[str, Any]]]:
        """All ``(user_id, spec_name, payload)`` rows (the attach read)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT user_id, spec, payload FROM ledger_bounds "
                "ORDER BY user_id, spec"
            ).fetchall()
        return iter((user, spec, json.loads(blob)) for user, spec, blob in rows)

    def ledger_bound_count(self) -> int:
        """Number of persisted ``(user, spec)`` bound rows."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM ledger_bounds"
            ).fetchone()
        return int(count)

    # -- JournalBackend protocol ---------------------------------------------
    _JOURNAL_COLUMNS = (
        "seq, idem_key, kind, payload, status, outcome_digest, response"
    )

    def journal_append(self, key: str, kind: str, payload_json: str):
        """Insert one pending journal row, or return the existing row.

        ``INSERT OR IGNORE`` against the ``idem_key`` unique constraint
        makes the append idempotent at the storage layer: concurrent or
        retried appends of one idempotency key always resolve to one
        row and one sequence number.
        """
        return self.journal_append_many([(key, kind, payload_json)])[0]

    def journal_append_many(self, items: list[tuple[str, str, str]]):
        """Batched append — one durable transaction for a whole tick."""

        def txn(conn):
            now = time.time()
            conn.executemany(
                "INSERT OR IGNORE INTO request_journal "
                "(idem_key, kind, payload, status, created_at) "
                "VALUES (?, ?, ?, 'pending', ?)",
                [(key, kind, blob, now) for key, kind, blob in items],
            )
            rows = []
            for key, _kind, _blob in items:
                rows.append(
                    conn.execute(
                        f"SELECT {self._JOURNAL_COLUMNS} FROM request_journal "
                        "WHERE idem_key = ?",
                        (key,),
                    ).fetchone()
                )
            return rows

        return self._write_txn(txn)

    def journal_ack(self, seq: int, digest: str, response_json: str) -> None:
        """Mark one journal row done, recording digest and response."""
        self.journal_ack_many([(seq, digest, response_json)])

    def journal_ack_many(self, items: list[tuple[int, str, str]]) -> None:
        """Batched ack — one durable transaction for a whole tick."""

        def txn(conn):
            now = time.time()
            conn.executemany(
                "UPDATE request_journal SET status = 'done', "
                "outcome_digest = ?, response = ?, acked_at = ? WHERE seq = ?",
                [(digest, blob, now, seq) for seq, digest, blob in items],
            )

        self._write_txn(txn)

    def journal_ack_with_bounds(
        self,
        items: list[tuple[int, str, str]],
        bounds: list[tuple[str, str, dict[str, Any]]],
    ) -> None:
        """Acks plus ledger-bound puts, atomically, in one transaction.

        The exactly-once keystone: a journaled gateway drains the
        ledger's buffered durable-mirror writes and lands them *with*
        the acknowledgements they justify.  A crash therefore leaves the
        store in one of exactly two states — bounds folded and entries
        acked, or neither — never the in-doubt middle where a recovery
        re-execution would see a different prior than the original run.
        """

        def txn(conn):
            now = time.time()
            conn.executemany(
                "INSERT OR REPLACE INTO ledger_bounds "
                "(user_id, spec, payload, updated_at) VALUES (?, ?, ?, ?)",
                [
                    (user_id, spec_name, json.dumps(payload, sort_keys=True), now)
                    for user_id, spec_name, payload in bounds
                ],
            )
            conn.executemany(
                "UPDATE request_journal SET status = 'done', "
                "outcome_digest = ?, response = ?, acked_at = ? WHERE seq = ?",
                [(digest, blob, now, seq) for seq, digest, blob in items],
            )

        self._write_txn(txn)

    def journal_lookup(self, key: str):
        """The journal row under an idempotency key, or ``None``."""
        with self._lock:
            return self._conn.execute(
                f"SELECT {self._JOURNAL_COLUMNS} FROM request_journal "
                "WHERE idem_key = ?",
                (key,),
            ).fetchone()

    def journal_entries(self):
        """Every journal row, in sequence order."""
        with self._lock:
            return self._conn.execute(
                f"SELECT {self._JOURNAL_COLUMNS} FROM request_journal "
                "ORDER BY seq"
            ).fetchall()

    def journal_next_seq(self) -> int:
        """One past the highest journal sequence number ever issued.

        Reads ``sqlite_sequence`` (AUTOINCREMENT's high-water mark), so
        compacted rows still advance the floor — restarted processes
        never reissue a dead process's auto keys.
        """
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT seq FROM sqlite_sequence "
                    "WHERE name = 'request_journal'"
                ).fetchone()
            except sqlite3.OperationalError:
                # sqlite_sequence is created lazily, on the first insert
                # into any AUTOINCREMENT table: absent means empty.
                row = None
        return 1 if row is None else int(row[0]) + 1

    def journal_compact(self, upto_seq: int) -> int:
        """Delete acknowledged journal rows with ``seq <= upto_seq``."""

        def txn(conn):
            cursor = conn.execute(
                "DELETE FROM request_journal "
                "WHERE status = 'done' AND seq <= ?",
                (upto_seq,),
            )
            return cursor.rowcount

        return int(self._write_txn(txn))

    def append_audit_spill(self, rows: list[tuple[int, str, str]]) -> None:
        """Persist audit events evicted from the in-memory ring.

        ``INSERT OR IGNORE``: audit sequence numbers are dense and
        assigned once, so a re-spill after a busy-retry is a no-op.
        """

        def txn(conn):
            now = time.time()
            conn.executemany(
                "INSERT OR IGNORE INTO audit_spill (seq, kind, data, spilled_at) "
                "VALUES (?, ?, ?, ?)",
                [(seq, kind, blob, now) for seq, kind, blob in rows],
            )

        self._write_txn(txn)

    def audit_spill_count(self) -> int:
        """Number of spilled audit events."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM audit_spill"
            ).fetchone()
        return int(count)

    # -- operator hooks ------------------------------------------------------
    def backup(self, path: str | Path) -> None:
        """Write a consistent online snapshot of the store to ``path``.

        Uses SQLite's backup API, so it is safe while the server is
        serving (readers and writers proceed; the snapshot is
        transactionally consistent).
        """
        with self._lock:
            target = sqlite3.connect(str(path))
            try:
                self._conn.backup(target)
            finally:
                target.close()

    def compact(self) -> None:
        """Reclaim space from deleted/overwritten rows (``VACUUM``).

        Blocks writers for the duration; run it from the operations
        runbook's maintenance window, not the serving path.  File-backed
        stores first take an automatic snapshot at ``<path>.pre-compact``
        — ``VACUUM`` rewrites the whole file, and an interrupted rewrite
        is exactly the corruption :meth:`recover` exists for.
        """
        if self.path != ":memory:":
            self.backup(f"{self.path}.pre-compact")
        with self._lock:
            self._conn.execute("VACUUM")

    def quick_check(self) -> bool:
        """True when SQLite's integrity probe (``PRAGMA quick_check``) passes."""
        try:
            with self._lock:
                rows = self._conn.execute("PRAGMA quick_check").fetchall()
        except sqlite3.DatabaseError:
            return False
        return bool(rows) and rows[0][0] == "ok"

    @classmethod
    def recover(
        cls, path: str | Path, *, export_json: str | Path | None = None
    ) -> "SQLiteStore":
        """Open ``path``, quarantining and rebuilding it if corrupted.

        The boot-time entry point for the gateway: a healthy file opens
        normally; a damaged one (unreadable header, failed
        ``quick_check``) is moved aside to ``<path>.corrupt-<n>`` along
        with its WAL/SHM sidecars, a fresh store is created, and — when
        ``export_json`` names a flat-file cache export — artifacts are
        re-imported from it.  Ledger bounds cannot be rebuilt from a
        cache export; users restart from the full-space bound, which is
        strictly more permissive (see the operations runbook for why
        restoring the newest *backup* is preferable when one exists).

        A :class:`StoreFormatError` still propagates: a codec-version
        mismatch is a deployment error, not file damage.
        """
        path = str(path)
        store: "SQLiteStore" | None = None
        try:
            store = cls(path)
            if store.quick_check():
                return store
            store.close()
        except StoreFormatError:
            raise
        except (sqlite3.DatabaseError, ValueError):
            # ValueError: a garbage meta row — damage, not a codec skew.
            if store is not None:
                store.close()
        cls._quarantine(path)
        rebuilt = cls(path)
        if export_json is not None and Path(export_json).exists():
            rebuilt.import_cache_json(export_json)
        return rebuilt

    @staticmethod
    def _quarantine(path: str) -> None:
        """Move a damaged store (and sidecars) out of the way, keeping it."""
        suffix = 0
        while Path(f"{path}.corrupt-{suffix}").exists():
            suffix += 1
        os.replace(path, f"{path}.corrupt-{suffix}")
        for sidecar in ("-wal", "-shm"):
            if Path(path + sidecar).exists():
                os.replace(path + sidecar, f"{path}.corrupt-{suffix}{sidecar}")

    # -- conveniences --------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM artifacts"
            ).fetchone()
        return int(count)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- flat-file interop ---------------------------------------------------
    def export_cache_json(self, path: str | Path) -> int:
        """Write the store as a ``SynthesisCache.save`` file; returns count."""
        entries = dict(self.items())
        Path(path).write_text(
            json.dumps(
                {"version": CACHE_FORMAT_VERSION, "entries": entries},
                sort_keys=True,
            )
        )
        return len(entries)

    def import_cache_json(self, path: str | Path) -> int:
        """Absorb a ``SynthesisCache.save`` file; returns entries imported."""
        data = json.loads(Path(path).read_text())
        version = data.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise StoreFormatError(
                f"cache file {str(path)!r} has format version {version!r}, "
                f"this codec speaks {CACHE_FORMAT_VERSION}"
            )
        for key, payload in data["entries"].items():
            self.put(key, payload)
        return len(data["entries"])
