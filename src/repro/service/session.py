"""Multi-session serving: many secrets, one compiled-query registry.

:class:`~repro.monad.anosy.AnosyT` tracks knowledge per *secret value*
inside one monadic computation.  A service instead juggles thousands of
independent principals — one per connected user — all declassifying
through the same small set of compiled queries.  :class:`SessionManager`
makes that split explicit, mirroring the Haskell artifact's ``AnosyST``
(whose ``secrets :: HashMap secret dom`` multiplexes tracked knowledge
over a single ``queries`` table):

* the :class:`~repro.core.plugin.QueryRegistry` and the policy are shared,
  immutable serving state — compile once, attach to a manager, serve;
* each :class:`Session` owns one protected secret and its mutable
  attacker-knowledge approximation plus an audit trail.

:meth:`SessionManager.downgrade_batch` is the throughput path: the
compiled ind.-set pair is fetched once per query, the prior→posterior
intersection is memoized per *distinct* prior (fleets of fresh sessions
all share the ⊤ prior, so a thousand sessions cost one intersection), and
only the secret-dependent parts — query evaluation and knowledge update —
run per session.

The manager is safe for concurrent use: one reentrant lock serializes
session lifecycle and every batch application, so a session's knowledge
history is always a linearization of whole downgrades — a worker pool
never observes a batch half-applied.  (Compiled artifacts need no lock:
the registry is immutable shared state.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.plugin import QueryRegistry
from repro.core.qinfo import QInfo
from repro.domains.base import AbstractDomain
from repro.lang.secrets import SecretSpec, SecretValue
from repro.monad.anosy import (
    DowngradeDecision,
    DowngradeInvariantError,
    DowngradeRecord,
    PolicyViolation,
    UnknownQuery,
    batch_pair_verdict,
    batch_verdict,
    evaluate_downgrade,
    pair_verdict,
    top_knowledge_for,
)
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import ProtectedSecret
from repro.obs.metrics import NULL_REGISTRY
from repro.service.soa import FleetStore
from repro.solver import vectoreval

__all__ = ["Session", "SessionManager"]

#: Below this many eligible sessions the SoA machinery costs more than
#: the scalar loop; single-session paths (``try_downgrade``) stay scalar.
_VECTOR_MIN_SESSIONS = 2


class _GroupPlan:
    """Precomputed outcome of one (query, distinct-prior) group.

    Downgrade outcomes are a pure function of the query, the prior, the
    policy, and the serving discipline (mode / ``check_both``) — never of
    the secret — so a fleet tick can reuse the plan built the first time
    a distinct prior meets a query: posterior refs into the interning
    table, shared frozen decision/record objects, and the two per-side
    verdicts.  Registries refuse duplicate names and the policy is
    immutable shared state, which is what makes the cache sound.
    """

    __slots__ = (
        "ok_true",
        "ok_false",
        "ref_true",
        "ref_false",
        "post_true",
        "post_false",
        "dec_true",
        "dec_false",
        "rec_true",
        "rec_false",
        "dec_refused",
        "rec_refused",
    )


@dataclass
class Session:
    """One principal's mutable serving state.

    ``knowledge is None`` means no downgrade has happened yet — the
    attacker's knowledge is still the full secret space (⊤ is materialized
    lazily, per query domain, by the manager).
    """

    session_id: str
    secret: ProtectedSecret
    knowledge: AbstractDomain | None = None
    history: list[DowngradeRecord] = field(default_factory=list)

    @property
    def spec(self) -> SecretSpec:
        """The secret type this session declassifies over."""
        return self.secret.spec

    def knowledge_size(self) -> int | None:
        """Size of the tracked knowledge (``None`` before any downgrade)."""
        return None if self.knowledge is None else self.knowledge.size()

    def authorized_count(self) -> int:
        """Authorized downgrades in this session's audit trail."""
        return sum(1 for record in self.history if record.authorized)


@dataclass
class SessionManager:
    """Shared compiled queries + policy, multiplexed over many sessions."""

    registry: QueryRegistry
    policy: QuantitativePolicy
    mode: str = "under"
    check_both: bool = True
    #: Serve eligible batches through the structure-of-arrays tensor path
    #: (one stacked intersection + one vectorized verdict per tick).  Off,
    #: or without NumPy, every batch runs the scalar reference path; the
    #: two are differentially identical (decisions, posteriors, audit
    #: records — see tests/service/test_vectorized_differential.py).
    vectorized: bool = True
    #: Settable metrics registry (``repro.obs``); the owning service or
    #: gateway swaps in its hub's registry.  Path selection is a
    #: decision-channel fact (batch size and NumPy availability, never
    #: the secrets).
    metrics: Any = field(default=NULL_REGISTRY, repr=False, compare=False)
    sessions: dict[str, Session] = field(default_factory=dict)
    #: Serializes lifecycle and batch application; reentrant because the
    #: single-session paths funnel into :meth:`downgrade_batch`.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    #: Lazily-built SoA mirrors of open sessions, one per secret type.
    _stores: dict[str, FleetStore] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Memoized :class:`_GroupPlan` per (query, mode, check_both, ref).
    _plans: dict[tuple[str, str, bool, int], _GroupPlan] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.mode not in ("under", "over"):
            raise ValueError(f"mode must be 'under' or 'over', got {self.mode!r}")

    # -- session lifecycle -------------------------------------------------
    def open_session(
        self,
        session_id: str,
        secret: ProtectedSecret | tuple[SecretSpec, SecretValue],
    ) -> Session:
        """Register a principal; ids must be unique among open sessions."""
        with self._lock:
            if session_id in self.sessions:
                raise ValueError(f"session {session_id!r} already open")
            if not isinstance(secret, ProtectedSecret):
                spec, value = secret
                secret = ProtectedSecret.seal(spec, value)
            session = Session(session_id=session_id, secret=secret)
            self.sessions[session_id] = session
            return session

    def open_sessions(
        self, secrets: Mapping[str, ProtectedSecret | tuple[SecretSpec, SecretValue]]
    ) -> list[Session]:
        """Bulk :meth:`open_session` (e.g. a fleet of fresh users)."""
        return [self.open_session(sid, secret) for sid, secret in secrets.items()]

    def close_session(self, session_id: str) -> Session:
        """Drop a session, returning its final state (with audit trail)."""
        with self._lock:
            try:
                session = self.sessions.pop(session_id)
            except KeyError:
                raise KeyError(f"no open session {session_id!r}") from None
            store = self._stores.get(session.spec.name)
            if store is not None:
                store.discard(session_id)
            return session

    def session(self, session_id: str) -> Session:
        """Look up an open session."""
        with self._lock:
            try:
                return self.sessions[session_id]
            except KeyError:
                raise KeyError(f"no open session {session_id!r}") from None

    def knowledge_of(self, session_id: str) -> AbstractDomain | None:
        """The tracked knowledge for a session (``None`` = no prior yet)."""
        return self.session(session_id).knowledge

    # -- serving -----------------------------------------------------------
    def downgrade(self, session_id: str, query_name: str) -> bool:
        """Raising single-session downgrade (Figure 2 semantics)."""
        decision = self.try_downgrade(session_id, query_name)
        if not decision.authorized:
            if decision.kind == "unknown_query":
                raise UnknownQuery(decision.reason)
            raise PolicyViolation(decision.reason)
        if decision.response is None:
            raise DowngradeInvariantError(
                f"authorized downgrade of {query_name!r} carries no response"
            )
        return decision.response

    def try_downgrade(self, session_id: str, query_name: str) -> DowngradeDecision:
        """Non-raising single-session downgrade."""
        return self.downgrade_batch(query_name, [session_id])[session_id]

    def downgrade_batch(
        self, query_name: str, session_ids: Iterable[str] | None = None
    ) -> dict[str, DowngradeDecision]:
        """Answer one query for many sessions in a single pass.

        ``session_ids`` defaults to every open session; duplicate ids
        collapse to one request.  Every id is resolved *before* any
        knowledge is touched, so an unknown session raises without
        leaving the batch half-applied.  The compiled ind.-set pair is
        fetched once; posterior pairs (via :meth:`QInfo.approx_batch
        <repro.core.qinfo.QInfo.approx_batch>`) and, in the
        ``check_both`` discipline, the secret-independent authorization
        verdict are memoized per distinct prior.
        """
        with self._lock:
            return self._downgrade_batch_locked(query_name, session_ids)

    def _downgrade_batch_locked(
        self, query_name: str, session_ids: Iterable[str] | None
    ) -> dict[str, DowngradeDecision]:
        ids = list(dict.fromkeys(self.sessions if session_ids is None else session_ids))
        sessions: dict[str, Session] = {}
        for sid in ids:
            session = self.sessions.get(sid)
            if session is None:
                raise KeyError(f"no open session {sid!r}")
            sessions[sid] = session

        compiled = self.registry.lookup(query_name)
        if compiled is None:
            refusal = DowngradeDecision(
                authorized=False,
                response=None,
                reason=f"Can't downgrade {query_name}",
                kind="unknown_query",
            )
            return {sid: self._record(sid, query_name, refusal, None) for sid in ids}

        qinfo = compiled.qinfo
        top = top_knowledge_for(qinfo)
        decisions: dict[str, DowngradeDecision] = {}

        eligible: list[str] = []
        qsecret = qinfo.secret
        for sid, session in sessions.items():
            spec = session.secret.spec
            if spec is not qsecret and spec != qsecret:
                decisions[sid] = self._record(
                    sid,
                    query_name,
                    DowngradeDecision(
                        authorized=False,
                        response=None,
                        reason=(
                            f"query {query_name!r} is over {qinfo.secret.name!r}, "
                            f"secret is {session.spec.name!r}"
                        ),
                        kind="spec_mismatch",
                    ),
                    None,
                )
            else:
                eligible.append(sid)

        if (
            self.vectorized
            and vectoreval.AVAILABLE
            and len(eligible) >= _VECTOR_MIN_SESSIONS
        ):
            self._count_path("vectorized", len(eligible))
            self._serve_eligible_vectorized(
                query_name, qinfo, sessions, eligible, decisions, top
            )
        else:
            self._count_path("scalar", len(eligible))
            self._serve_eligible_scalar(
                query_name, qinfo, sessions, eligible, decisions, top
            )
        if len(eligible) == len(ids):
            # No spec mismatches: decisions were filled in ids order.
            return decisions
        return {sid: decisions[sid] for sid in ids}

    def _count_path(self, path: str, sessions: int) -> None:
        """Tally which serving path one batch took (and how many rows)."""
        if self.metrics:
            self.metrics.counter(
                "anosy_serve_path_total",
                "Serving batches by execution path.",
                labels=("path",),
            ).labels(path=path).inc()
            self.metrics.counter(
                "anosy_serve_path_sessions_total",
                "Sessions served by execution path.",
                labels=("path",),
            ).labels(path=path).inc(sessions)

    def _serve_eligible_scalar(
        self,
        query_name: str,
        qinfo: QInfo,
        sessions: Mapping[str, Session],
        eligible: list[str],
        decisions: dict[str, DowngradeDecision],
        top: AbstractDomain,
    ) -> None:
        """The per-session reference path (also the no-NumPy fallback)."""
        priors = [
            sessions[sid].knowledge if sessions[sid].knowledge is not None else top
            for sid in eligible
        ]
        pairs = qinfo.approx_batch(priors, mode=self.mode)
        verdicts: dict[AbstractDomain, bool] = {}
        for sid, prior, pair in zip(eligible, priors, pairs):
            session = sessions[sid]
            pair_authorized: bool | None = None
            if self.check_both:
                pair_authorized = verdicts.get(prior)
                if pair_authorized is None:
                    pair_authorized = pair_verdict(self.policy, pair)
                    verdicts[prior] = pair_authorized
            decision, posterior = evaluate_downgrade(
                qinfo,
                self.policy,
                session.secret,
                prior,
                mode=self.mode,
                check_both=self.check_both,
                posterior_pair=pair,
                pair_authorized=pair_authorized,
            )
            if posterior is not None:
                session.knowledge = posterior
            decisions[sid] = self._record(sid, query_name, decision, prior)

    def _serve_eligible_vectorized(
        self,
        query_name: str,
        qinfo: QInfo,
        sessions: Mapping[str, Session],
        eligible: list[str],
        decisions: dict[str, DowngradeDecision],
        top: AbstractDomain,
    ) -> None:
        """One fleet tick on the SoA store, differentially identical to
        :meth:`_serve_eligible_scalar`.

        The whole tick is four array passes — gather refs, one stacked
        intersection per distinct *new* prior (inside ``approx_batch``;
        priors already seen by this query hit the :class:`_GroupPlan`
        cache), one vectorized size/verdict comparison, one batched query
        run over the admitted rows — plus a per-session loop that only
        assigns precomputed (shared, frozen) decision/record objects.
        The new refs scatter back into the store in one array write.
        """
        np = vectoreval.require_numpy()
        store = self._store_for(qinfo.secret)
        table = store.table
        index = store.index
        count = len(eligible)

        sess_list = [sessions[sid] for sid in eligible]
        rows_list: list[int] = []
        for sid, session in zip(eligible, sess_list):
            row = index.get(sid)
            if row is None:
                row = store.add(sid, session.secret.unprotect_tcb(), session.knowledge)
            rows_list.append(row)
        rows = np.asarray(rows_list, dtype=np.int64)
        refs_list = store.refs[rows].tolist()
        for j, session in enumerate(sess_list):
            if session.knowledge is not table[refs_list[j]]:
                # Knowledge mutated behind the store's back (scalar
                # interleave, test fixture, restore): re-intern, and
                # normalize the session to the interned object so the
                # identity check is cheap again next tick.
                ref = store.intern(session.knowledge)
                refs_list[j] = ref
                store.refs[rows_list[j]] = ref
                if session.knowledge is not None:
                    session.knowledge = table[ref]

        uniq, inverse = np.unique(
            np.asarray(refs_list, dtype=np.int64), return_inverse=True
        )
        plan_key = (query_name, self.mode, self.check_both)
        uniq_list = uniq.tolist()
        plans: list[_GroupPlan] = []
        misses: list[int] = []
        for k, ref in enumerate(uniq_list):
            plan = self._plans.get(plan_key + (ref,))
            if plan is None:
                misses.append(k)
                plan = _GroupPlan()
            plans.append(plan)
        if misses:
            self._build_plans(
                query_name,
                qinfo,
                store,
                [uniq_list[k] for k in misses],
                [plans[k] for k in misses],
                top,
                plan_key,
            )

        if self.check_both:
            auth_groups = np.fromiter(
                (plan.ok_true for plan in plans), dtype=bool, count=len(plans)
            )
            auth_rows = auth_groups[inverse]
            responses = np.zeros(count, dtype=bool)
            admitted = np.flatnonzero(auth_rows)
            if len(admitted):
                responses[admitted] = qinfo.run_batch(store.secrets[rows[admitted]])
        else:
            # Evaluation-faithful mode: the query runs for every eligible
            # session, then only the observed side's posterior is checked.
            responses = qinfo.run_batch(store.secrets[rows])
            ok_true = np.fromiter(
                (plan.ok_true for plan in plans), dtype=bool, count=len(plans)
            )
            ok_false = np.fromiter(
                (plan.ok_false for plan in plans), dtype=bool, count=len(plans)
            )
            auth_rows = np.where(responses, ok_true[inverse], ok_false[inverse])

        # The only per-session Python: scatter precomputed outcomes.
        group_of = inverse.tolist()
        authorized_list = auth_rows.tolist()
        response_list = responses.tolist()
        new_refs = refs_list
        for j, sid in enumerate(eligible):
            plan = plans[group_of[j]]
            session = sess_list[j]
            if authorized_list[j]:
                if response_list[j]:
                    session.knowledge = plan.post_true
                    new_refs[j] = plan.ref_true
                    decisions[sid] = plan.dec_true
                    session.history.append(plan.rec_true)
                else:
                    session.knowledge = plan.post_false
                    new_refs[j] = plan.ref_false
                    decisions[sid] = plan.dec_false
                    session.history.append(plan.rec_false)
            else:
                decisions[sid] = plan.dec_refused
                session.history.append(plan.rec_refused)
        store.refs[rows] = np.asarray(new_refs, dtype=np.int64)

    def _build_plans(
        self,
        query_name: str,
        qinfo: QInfo,
        store: FleetStore,
        refs: list[int],
        plans: list[_GroupPlan],
        top: AbstractDomain,
        plan_key: tuple[str, str, bool],
    ) -> None:
        """Fill (and cache) group plans for priors this query hasn't met."""
        table = store.table
        priors = [table[ref] if ref else top for ref in refs]
        pairs = qinfo.approx_batch(priors, mode=self.mode)
        if self.check_both:
            auth = batch_pair_verdict(self.policy, pairs)
            ok_true = ok_false = auth
        else:
            ok_true = batch_verdict(self.policy, [pair[0] for pair in pairs])
            ok_false = batch_verdict(self.policy, [pair[1] for pair in pairs])
        policy_reason = (
            f"Policy Violation: {self.policy.name} fails on a "
            f"posterior of {qinfo.name!r}"
        )
        for k, (ref, prior, pair, plan) in enumerate(zip(refs, priors, pairs, plans)):
            prior_size = prior.size()
            plan.ok_true = bool(ok_true[k])
            plan.ok_false = bool(ok_false[k])
            plan.ref_true = plan.ref_false = 0
            plan.post_true = plan.post_false = None
            plan.dec_true = plan.dec_false = None
            plan.rec_true = plan.rec_false = None
            plan.dec_refused = plan.rec_refused = None
            if plan.ok_true:
                post_ref = store.intern(pair[0])
                plan.ref_true = post_ref
                plan.post_true = table[post_ref]
                plan.dec_true = DowngradeDecision(
                    authorized=True, response=True, reason="ok"
                )
                plan.rec_true = DowngradeRecord(
                    query_name=query_name,
                    authorized=True,
                    response=True,
                    prior_size=prior_size,
                    posterior_size=pair[0].size(),
                )
            if plan.ok_false:
                post_ref = store.intern(pair[1])
                plan.ref_false = post_ref
                plan.post_false = table[post_ref]
                plan.dec_false = DowngradeDecision(
                    authorized=True, response=False, reason="ok"
                )
                plan.rec_false = DowngradeRecord(
                    query_name=query_name,
                    authorized=True,
                    response=False,
                    prior_size=prior_size,
                    posterior_size=pair[1].size(),
                )
            if not (plan.ok_true and plan.ok_false):
                plan.dec_refused = DowngradeDecision(
                    authorized=False,
                    response=None,
                    reason=policy_reason,
                    kind="policy",
                )
                plan.rec_refused = DowngradeRecord(
                    query_name=query_name,
                    authorized=False,
                    response=None,
                    prior_size=prior_size,
                    posterior_size=None,
                )
            self._plans[plan_key + (ref,)] = plan

    def _store_for(self, spec: SecretSpec) -> FleetStore:
        store = self._stores.get(spec.name)
        if store is None:
            store = FleetStore(spec)
            self._stores[spec.name] = store
        return store

    def _record(
        self,
        session_id: str,
        query_name: str,
        decision: DowngradeDecision,
        prior: AbstractDomain | None,
    ) -> DowngradeDecision:
        """Append one audit record to the session's trail.

        ``prior is None`` marks requests refused before any knowledge was
        consulted (unknown query, spec mismatch); like :class:`AnosyT`,
        those never touch the session's knowledge history — the
        service-level audit trail (:mod:`repro.service.api`) still logs
        them.
        """
        session = self.session(session_id)
        if prior is None:
            return decision
        posterior_size = (
            session.knowledge.size()
            if decision.authorized and session.knowledge is not None
            else None
        )
        session.history.append(
            DowngradeRecord(
                query_name=query_name,
                authorized=decision.authorized,
                response=decision.response,
                prior_size=prior.size(),
                posterior_size=posterior_size,
            )
        )
        return decision

    # -- introspection -----------------------------------------------------
    def open_count(self) -> int:
        """Number of open sessions."""
        with self._lock:
            return len(self.sessions)

    def authorized_count(self) -> int:
        """Authorized downgrades across all open sessions."""
        with self._lock:
            return sum(
                session.authorized_count() for session in self.sessions.values()
            )
