"""Tests for k-ary (non-boolean) query compilation."""

import pytest

from repro.core.kary import MAX_OUTPUTS, compile_kary_query
from repro.domains.box import IntervalDomain
from repro.lang.ast import var
from repro.lang.eval import eval_int
from repro.lang.secrets import SecretSpec
from repro.lang.validate import QueryValidationError
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
SPACE = Box(SPEC.bounds())
NAMES = SPEC.field_names

#: Which quadrant of the grid the secret is in: outputs {0, 1, 2}.
QUADRANT = (var("x") >= 10).ite(1, 0) + (var("y") >= 10).ite(1, 0)


class TestCompilation:
    def test_outputs_discovered_exactly(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC)
        assert compiled.qinfo.outputs == (0, 1, 2)

    def test_every_output_verified(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC)
        assert compiled.verified
        assert set(compiled.outcomes) == {
            f"{mode}[{v}]" for mode in ("under", "over") for v in (0, 1, 2)
        }

    def test_run_evaluates(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC)
        assert compiled.qinfo.run((0, 0)) == 0
        assert compiled.qinfo.run((15, 0)) == 1
        assert compiled.qinfo.run((15, 15)) == 2

    def test_under_indsets_sound(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC)
        for output, indset in compiled.qinfo.under_indsets.items():
            for point in SPACE.iter_points():
                if indset.contains(point):
                    assert eval_int(QUADRANT, dict(zip(NAMES, point))) == output

    def test_over_indsets_complete(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC)
        for point in list(SPACE.iter_points())[::7]:
            output = eval_int(QUADRANT, dict(zip(NAMES, point)))
            assert compiled.qinfo.over_indsets[output].contains(point)

    def test_powerset_domain_variant(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC, domain="powerset", k=2)
        assert compiled.verified
        # The under ind. set for output 1 is two disjoint rectangles; a
        # k=2 powerset captures both exactly.
        ones = compiled.qinfo.under_indsets[1]
        assert ones.size() == 200

    def test_posteriors_intersect_prior(self):
        compiled = compile_kary_query("quadrant", QUADRANT, SPEC)
        prior = IntervalDomain(SPEC, Box.make((0, 9), (0, 19)))
        posteriors = compiled.qinfo.underapprox(prior)
        assert posteriors[1].size() <= prior.size()
        # Output 1 with x<10 forces y>=10.
        for point in SPACE.iter_points():
            if posteriors[1].contains(point):
                assert point[0] < 10 and point[1] >= 10


class TestRejections:
    def test_boolean_expression_rejected(self):
        with pytest.raises(QueryValidationError, match="integer"):
            compile_kary_query("q", var("x") <= 1, SPEC)  # type: ignore[arg-type]

    def test_wide_output_range_rejected(self):
        with pytest.raises(QueryValidationError, match="too wide|outputs"):
            compile_kary_query("q", var("x") * 100 + var("y"), SPEC)

    def test_undeclared_field_rejected(self):
        with pytest.raises(QueryValidationError):
            compile_kary_query("q", var("z") + 1, SPEC)

    def test_max_outputs_is_enforced_constant(self):
        assert MAX_OUTPUTS >= 2
