"""Chaos suite: kill shards mid-flight and prove the invariants hold.

Three invariants, end to end, under every fault the plan can schedule:

1. **No lost commits** — a bound the gateway mirror accepted survives any
   shard death; replays can only tighten it (monotone folds).
2. **No budget laundering** — no crash timing (before admission, between
   admission and commit, after commit) yields an answer the mirror's
   bounds would have refused, and refusals never mutate bounds.
3. **Bounded recovery** — the server returns to the shard path within a
   bounded number of requests plus one breaker cooldown, with zero
   recompiles (artifacts re-attach from the content-addressed cache).

``CHAOS_SEED`` parameterizes every seeded schedule; CI runs the suite
once with the pinned default and once with a random seed (echoed for
reproduction).
"""

import asyncio
import json
import os
import signal

import pytest

from repro.core.plugin import CompileOptions
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server import faults
from repro.server.faults import FaultPlan, FaultSpec
from repro.server.gateway import (
    DeclassificationServer,
    ServerConfig,
    ServerDegraded,
)
from repro.server.store import SQLiteStore
from repro.service.api import CompileRequest

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "20220622"))

SPEC = SecretSpec.declare("ChaosLoc", x=(0, 199), y=(0, 199))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
#: Secret (30, 40): west/south/inner all answer True, with posterior
#: sizes 20000 / 10000 / 5000 against the 40000-point prior.
QUERIES = (("west", "x <= 99"), ("south", "y <= 99"), ("inner", "x <= 49"))
SECRET = (30, 40)


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


def make_server(**kwargs) -> DeclassificationServer:
    kwargs.setdefault("options", OPTIONS)
    return DeclassificationServer(size_above(100), **kwargs)


async def boot(server, queries=QUERIES):
    for name, text in queries:
        await server.register_query(CompileRequest(name, text, SPEC))


# ---------------------------------------------------------------------------
# Real process death (actual SIGKILL, no fault plan)
# ---------------------------------------------------------------------------


def test_sigkill_serving_shard_recovers_with_zero_recompiles(tmp_path):
    """Headline: kill the shard process, keep the budget, skip resynthesis."""

    async def scenario():
        store = SQLiteStore(tmp_path / "chaos.db")
        config = ServerConfig(
            inline_compiles=True,
            serving_shards=1,
            max_retries=2,
            retry_backoff=0.01,
            breaker_threshold=5,
        )
        server = make_server(
            store=store, budget_floor=size_above(4000), config=config
        )
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        first = await server.downgrade("s1", "west")
        assert first.authorized and first.response is True
        assert server.ledger.remaining("alice", SPEC) == 20_000
        compiles_before = server.pool.total_submitted()

        # SIGKILL the live shard worker — abrupt death, no cleanup.
        executor = server.serving_pool._executors[0]
        assert executor is not None
        for pid in list(executor._processes):
            os.kill(pid, signal.SIGKILL)

        # The next batch rides the supervisor: restart, rehydrate, retry.
        second = await server.downgrade("s1", "south")
        assert second.authorized and second.response is True
        assert server.stats.shard_restarts >= 1
        # Invariant 1: the committed west bound survived the death.
        assert server.ledger.remaining("alice", SPEC) == 10_000
        # Invariant 3: recovery compiled nothing — artifacts re-attach
        # from the content-addressed cache, never from synthesis.
        assert server.pool.total_submitted() == compiles_before
        # Invariant 2: the refusal boundary is exactly the healthy one.
        assert (await server.downgrade("s1", "inner")).authorized
        refused = await server.downgrade("s1", "west")
        assert not refused.authorized
        assert "budget exhausted" in refused.reason
        assert refused.knowledge_size == 5000
        server.shutdown()
        store.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Crash-timing attacks on the ledger (inline shards, simulated death)
# ---------------------------------------------------------------------------

INLINE_SHARDED = dict(
    inline_compiles=True,
    serving_shards=1,
    inline_serving=True,
    max_retries=2,
    retry_backoff=0.001,
    breaker_threshold=5,
)


def test_crash_between_admission_and_commit_charges_nobody():
    """Death after preauthorization but before commit must not charge."""

    async def scenario():
        plan = FaultPlan(
            [FaultSpec(site="serve.round", kind="crash_before_result")],
            seed=CHAOS_SEED,
        )
        server = make_server(
            budget_floor=size_above(4000),
            config=ServerConfig(**INLINE_SHARDED),
            fault_plan=plan,
        )
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        # Attempt 1 admits s1, then dies before the downgrade runs; the
        # retry re-checks admission on a rehydrated shard and commits
        # exactly once.
        result = await server.downgrade("s1", "west")
        assert result.authorized and result.response is True
        assert server.stats.shard_restarts == 1
        assert server.ledger.remaining("alice", SPEC) == 20_000
        # The plan crossed the payload boundary as a fingerprint-matched
        # clone; the installed copy records the firing.
        installed = faults.active_fault_plan()
        assert installed.fired() == [("serve.round", "crash_before_result")]
        server.shutdown()

    asyncio.run(scenario())


def test_crash_after_commit_charges_exactly_once():
    """Shard-local commits that die pre-delta replay without double-charge."""

    async def scenario():
        plan = FaultPlan(
            [FaultSpec(site="serve.round", kind="crash_after_commit")],
            seed=CHAOS_SEED,
        )
        server = make_server(
            budget_floor=size_above(4000),
            config=ServerConfig(**INLINE_SHARDED),
            fault_plan=plan,
        )
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        # Attempt 1 commits on the shard's local ledger, then dies before
        # the delta reaches the mirror — the charge dies with the shard.
        # The retry re-serves on a fresh shard; intersection is
        # idempotent, so the mirror ends exactly one charge tighter.
        result = await server.downgrade("s1", "west")
        assert result.authorized
        assert server.ledger.remaining("alice", SPEC) == 20_000
        server.shutdown()

    asyncio.run(scenario())


def test_crashes_and_refusals_never_launder_a_refused_budget():
    """Once the mirror holds a bound, no crash or refusal loosens it."""

    async def scenario():
        plan = FaultPlan(
            [FaultSpec(site="serve", kind="crash_before_result", times=1)],
            seed=CHAOS_SEED,
        )
        server = make_server(
            budget_floor=size_above(4000),
            config=ServerConfig(**INLINE_SHARDED),
            fault_plan=plan,
        )
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        for name in ("west", "south", "inner"):
            assert (await server.downgrade("s1", name)).authorized
        assert server.ledger.remaining("alice", SPEC) == 5000
        # The crash fault is still armed: the next request kills the
        # shard (state and local ledger die), forcing rehydration from
        # the mirror.  The refusal must be byte-identical every time.
        refusals = [await server.downgrade("s1", "west") for _ in range(3)]
        assert server.stats.shard_restarts == 1
        for refused in refusals:
            assert not refused.authorized
            assert refused.reason == refusals[0].reason
            assert refused.knowledge_size == 5000
        assert server.ledger.remaining("alice", SPEC) == 5000
        server.shutdown()

    asyncio.run(scenario())


def test_recovery_within_bounded_requests_and_one_cooldown():
    """Breaker opens → degraded answers → probe → shard path resumes."""

    async def scenario():
        plan = FaultPlan(
            [FaultSpec(site="serve", kind="crash_before_result")],
            seed=CHAOS_SEED,
        )
        config = ServerConfig(
            inline_compiles=True,
            serving_shards=1,
            inline_serving=True,
            max_retries=0,
            breaker_threshold=1,
            breaker_cooldown=0.15,
        )
        server = make_server(
            budget_floor=size_above(4000), config=config, fault_plan=plan
        )
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")

        # Request 1: the only attempt dies; the breaker opens and the
        # batch degrades onto the gateway-local path — still answered,
        # still charged on the mirror.
        first = await server.downgrade("s1", "west")
        assert first.authorized and first.response is True
        assert server.stats.degraded_batches == 1
        assert server.stats.shard_restarts == 1
        assert server.ledger.remaining("alice", SPEC) == 20_000
        assert server.supervisor.breaker("serving", 0).state() == "open"
        assert "s1" in server._degraded_sessions

        # Request 2 (breaker still open): served degraded immediately —
        # the shard is not even attempted.
        second = await server.downgrade("s1", "south")
        assert second.authorized
        assert server.stats.degraded_batches == 2
        assert server.ledger.remaining("alice", SPEC) == 10_000

        # One cooldown later the half-open probe runs the real shard
        # path (the fault budget is spent); success closes the breaker
        # and retires the degraded session mirror.
        await asyncio.sleep(0.2)
        third = await server.downgrade("s1", "inner")
        assert third.authorized
        assert server.supervisor.breaker("serving", 0).state() == "closed"
        assert server.stats.degraded_batches == 2  # no new degraded work
        assert "s1" not in server._degraded_sessions
        assert "s1" not in server.manager.sessions

        # Cross-path budget continuity: the rehydrated shard saw the
        # degraded-path commits (ship-time bound refresh), so the floor
        # is exactly where a healthy run would have put it.
        refused = await server.downgrade("s1", "west")
        assert not refused.authorized
        assert "budget exhausted" in refused.reason
        server.shutdown()

    asyncio.run(scenario())


def test_degraded_load_shedding_names_a_retry_time():
    async def scenario():
        config = ServerConfig(
            inline_compiles=True,
            serving_shards=2,
            inline_serving=True,
            max_queued_downgrades=4,
            degraded_watermark=0.5,
            breaker_cooldown=0.25,
        )
        server = make_server(config=config)
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        server.supervisor.breaker("serving", 0).trip(cooldown=3600.0)
        server.supervisor.breaker("serving", 1).trip(cooldown=3600.0)
        # Every shard down: the queue bound collapses to the minimum.
        queued = asyncio.ensure_future(server.downgrade("s1", "west"))
        await asyncio.sleep(0)  # let it enqueue
        with pytest.raises(ServerDegraded) as excinfo:
            await server.downgrade("s1", "south")
        assert excinfo.value.retry_after > 0
        assert server.stats.degraded_shed == 1
        # The queued request still gets answered (degraded path).
        result = await queued
        assert result.authorized
        assert server.stats.degraded_batches == 1
        server.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# The full fault matrix, under inline AND real-process serving shards
# ---------------------------------------------------------------------------

MATRIX = [
    ("crash_before_result", "serve"),
    ("crash_after_commit", "serve.round"),
    ("delay", "serve"),
    ("duplicate_delivery", "serve"),
    ("corrupt_payload", "serve"),
    ("db_locked", "store.write"),
]


@pytest.mark.parametrize("inline", [True, False], ids=["inline", "process"])
@pytest.mark.parametrize("kind,site", MATRIX, ids=[k for k, _s in MATRIX])
def test_fault_matrix_preserves_answers_and_charges(kind, site, inline):
    """Whatever fires, the caller sees the healthy run's answer and the
    mirror ends with the healthy run's bounds — then the shard path
    resumes after at most one breaker cooldown."""

    async def scenario():
        # Process-mode crashes re-fire in every replacement worker (the
        # plan ships inside each payload), so recovery there rides the
        # degraded path; inline workers keep fire counters, so recovery
        # rides a retry.  The invariants don't care which.
        plan = FaultPlan(
            [FaultSpec(site=site, kind=kind, delay=1.0)], seed=CHAOS_SEED
        )
        config = ServerConfig(
            inline_compiles=True,
            serving_shards=1,
            inline_serving=inline,
            max_retries=2,
            retry_backoff=0.005,
            breaker_threshold=3,
            breaker_cooldown=0.1,
            serving_deadline=(
                0.3 if kind == "delay" and not inline else None
            ),
        )
        store = SQLiteStore(":memory:")
        server = make_server(
            store=store,
            budget_floor=size_above(4000),
            config=config,
            fault_plan=plan,
        )
        if kind == "db_locked":
            # Store writes run in the gateway process; arm it there too
            # (same fingerprint, so inline installs share the counters).
            faults.install_fault_plan(plan, simulate=True)
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")

        first = await server.downgrade("s1", "west")
        assert first.authorized and first.response is True, (kind, inline)
        assert server.ledger.remaining("alice", SPEC) == 20_000

        # Disarm, wait out any open breaker, and prove the shard path is
        # back: the next answer is served and the breaker ends closed.
        server.fault_plan = None
        server.pool.fault_plan = None
        server.serving_pool.fault_plan = None
        if kind == "delay" and inline:
            pass  # a bare inline delay never failed anything
        await asyncio.sleep(0.12)
        second = await server.downgrade("s1", "south")
        assert second.authorized and second.response is True
        assert server.ledger.remaining("alice", SPEC) == 10_000
        assert server.supervisor.breaker("serving", 0).state() == "closed"
        assert store.ledger_bound_count() == 1
        server.shutdown()
        store.close()

    asyncio.run(scenario())


def test_compile_fault_matrix_inline():
    """Compile-side faults: crash retries, codec retries, breaker failover."""

    async def scenario():
        plan = FaultPlan(
            [
                FaultSpec(site="compile", kind="crash_before_result"),
                FaultSpec(site="compile", kind="corrupt_payload"),
                FaultSpec(site="compile", kind="duplicate_delivery"),
            ],
            seed=CHAOS_SEED,
        )
        config = ServerConfig(
            inline_compiles=True, max_retries=2, retry_backoff=0.001
        )
        server = make_server(config=config, fault_plan=plan)
        # Three registrations, three faults, three good artifacts.
        receipts = [
            await server.register_query(CompileRequest(name, text, SPEC))
            for name, text in QUERIES
        ]
        assert all(r.verified for r in receipts)
        assert server.supervisor.stats.crashes >= 1
        assert server.supervisor.stats.codec_errors >= 1
        assert server.stats.degraded_compiles == 0
        server.shutdown()

    asyncio.run(scenario())


def test_compile_breaker_fails_over_to_inline_execution():
    async def scenario():
        plan = FaultPlan(
            [FaultSpec(site="compile", kind="crash_before_result", times=10)],
            seed=CHAOS_SEED,
        )
        config = ServerConfig(
            inline_compiles=True,
            max_retries=0,
            breaker_threshold=1,
            breaker_cooldown=3600.0,
        )
        server = make_server(config=config, fault_plan=plan)
        receipt = await server.register_query(
            CompileRequest("west", "x <= 99", SPEC)
        )
        # The shard attempt died, the breaker opened, and the compile ran
        # inline on a clean payload — same artifact, no shard.
        assert receipt.verified
        assert server.stats.degraded_compiles >= 1
        assert server.supervisor.breaker("compile", server.pool.shard_for("x <= 99")
                                         ).state() == "open"
        # The artifact is genuinely usable.
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        result = await server.downgrade("s1", "west")
        assert result.authorized and result.response is True
        server.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Seeded fault storm: mirror monotonicity
# ---------------------------------------------------------------------------


def test_mirror_bounds_only_tighten_under_a_fault_storm():
    """Remaining budget per user is non-increasing through arbitrary chaos."""

    async def scenario():
        plan = FaultPlan(
            [
                FaultSpec(
                    site="serve", kind="crash_before_result", times=2,
                    probability=0.5,
                ),
                FaultSpec(
                    site="serve.round", kind="crash_after_commit", times=2,
                    probability=0.5,
                ),
                FaultSpec(
                    site="serve", kind="corrupt_payload", times=2,
                    probability=0.4,
                ),
                FaultSpec(
                    site="serve", kind="duplicate_delivery", times=3,
                    probability=0.5,
                ),
            ],
            seed=CHAOS_SEED,
        )
        config = ServerConfig(**{**INLINE_SHARDED, "serving_shards": 2})
        server = make_server(
            budget_floor=size_above(4000), config=config, fault_plan=plan
        )
        await boot(server)
        users = {f"s{i}": f"user-{i % 3}" for i in range(6)}
        for sid, user in users.items():
            server.open_session(sid, (SPEC, SECRET), user_id=user)
        histories = {user: [40_000] for user in set(users.values())}
        for name, _text in QUERIES * 2:
            for sid, user in users.items():
                result = await server.downgrade(sid, name)
                # Every request resolves: authorized or budget-refused.
                assert result.authorized or "budget" in result.reason, (
                    f"seed {CHAOS_SEED}: unexpected refusal {result.reason!r}"
                )
                histories[user].append(server.ledger.remaining(user, SPEC))
        for user, history in histories.items():
            assert history == sorted(history, reverse=True), (
                f"seed {CHAOS_SEED}: bounds loosened for {user}: {history}"
            )
            assert history[-1] >= 4000  # the floor held
        server.shutdown()

    asyncio.run(scenario())


def test_store_write_lock_storm_absorbed_end_to_end(tmp_path):
    async def scenario():
        store = SQLiteStore(tmp_path / "locky.db")
        server = make_server(
            store=store,
            budget_floor=size_above(4000),
            config=ServerConfig(**INLINE_SHARDED),
        )
        faults.install_fault_plan(
            FaultPlan(
                [FaultSpec(site="store.write", kind="db_locked", times=3)],
                seed=CHAOS_SEED,
            ),
            simulate=True,
        )
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        result = await server.downgrade("s1", "west")
        assert result.authorized
        # The write-through landed despite the lock storm.
        assert store.ledger_bound_count() == 1
        rows = list(store.ledger_bounds())
        assert rows[0][0] == "alice"
        assert json.dumps(rows[0][2])  # a real, decodable payload
        server.shutdown()
        store.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Journal crash windows (PR 9; the full drill lives in test_replay.py)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kind",
    ["crash_after_journal_before_execute", "crash_after_execute_before_ack"],
)
def test_journal_crash_windows_fire_and_leave_a_pending_row(kind):
    """The new fault kinds hit the journal site: the request dies with a
    journaled-but-unacked row behind it — exactly the recovery suffix
    ``recover_from_journal`` replays (see tests/server/test_replay.py
    for the end-to-end kill-and-restart drill)."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.server.journal import RequestJournal
    from repro.server.store import SQLiteStore as _Store

    async def scenario():
        store = _Store(":memory:")
        journal = RequestJournal(store)
        server = make_server(
            store=store,
            budget_floor=size_above(4000),
            config=ServerConfig(inline_compiles=True),
            journal=journal,
        )
        await boot(server, QUERIES[:1])
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        faults.install_fault_plan(
            FaultPlan([FaultSpec(site="journal", kind=kind)], seed=CHAOS_SEED),
            simulate=True,
        )
        with pytest.raises(BrokenProcessPool):
            await server.downgrade("s1", "west", idempotency_key="doomed")
        faults.clear_fault_plan()
        pending = journal.pending()
        assert [e.key for e in pending] == ["doomed"]
        # Atomic fold+ack: an unacked request left no durable charge,
        # whichever side of execution the process died on.
        assert store.ledger_bound_count() == 0
        store.close()

    asyncio.run(scenario())
