"""``AnosyT``: the bounded-downgrade monad transformer (paper section 3).

``AnosyT`` wraps an underlying secure runtime (the mini-LIO of
:mod:`repro.monad.secure`) with the state of Figure 2:

* the quantitative ``policy``,
* the ``secrets`` map from secret values to their current (approximated)
  attacker knowledge,
* the ``queries`` registry mapping names to compiled ``QInfo``.

``downgrade`` follows Figure 2 line by line: look the query up by name
(error if missing), compute *both* posteriors from the prior, check the
policy on both **before** evaluating the query on the secret (so the
accept/reject decision is independent of the secret — section 3 stresses
this prevents the decision itself from leaking), then run the query, keep
the posterior matching the response, and return the response.

Because posteriors are under-approximations ``P_i ⊆ K_i`` of the true
attacker knowledge (the induction sketched in section 3), any monotone
policy accepted on ``P_i`` also holds for ``K_i`` — enforcement is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.lang.secrets import SecretValue
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.core.plugin import CompileError, QueryRegistry
from repro.core.qinfo import QInfo
from repro.monad.policy import QuantitativePolicy, verdict_on_sizes
from repro.monad.protected import Unprotectable
from repro.monad.secure import SecureRuntime
from repro.solver import vectoreval

__all__ = [
    "PolicyViolation",
    "UnknownQuery",
    "DowngradeInvariantError",
    "DowngradeRecord",
    "DowngradeDecision",
    "AnosyT",
    "top_knowledge_for",
    "pair_verdict",
    "batch_verdict",
    "batch_pair_verdict",
    "evaluate_downgrade",
]

T = TypeVar("T")

#: Sizes at or above this overflow int64; vectorized verdicts fall back
#: to per-domain predicate calls rather than risk a wrapped comparison.
_SAFE_SIZE_LIMIT = 1 << 62


class PolicyViolation(Exception):
    """The posterior knowledge would violate the quantitative policy."""


class UnknownQuery(Exception):
    """The query string was never compiled (the "Can't downgrade" error)."""


class DowngradeInvariantError(RuntimeError):
    """An authorized downgrade lost its response or posterior.

    This is an internal-invariant breach, never a policy outcome — and a
    typed error (not ``assert``) so the serving path still refuses to
    hand out a corrupt result under ``python -O``.
    """


@dataclass(frozen=True)
class DowngradeRecord:
    """One entry of the downgrade audit trail."""

    query_name: str
    authorized: bool
    response: bool | None
    prior_size: int
    posterior_size: int | None


@dataclass(frozen=True)
class DowngradeDecision:
    """Outcome of :meth:`AnosyT.try_downgrade` (no exception flow).

    ``kind`` is the machine-readable outcome class — ``"ok"`` for
    authorized decisions, else ``"unknown_query"`` / ``"spec_mismatch"``
    / ``"policy"`` — which the raising ``downgrade`` entry points
    dispatch on; ``reason`` stays the human-facing message.
    """

    authorized: bool
    response: bool | None
    reason: str
    kind: str = "ok"


def top_knowledge_for(qinfo: QInfo) -> AbstractDomain:
    """The no-prior (full secret space) knowledge, in the query's domain."""
    indset = qinfo.under_indset or qinfo.over_indset
    if indset is None:
        raise CompileError(
            f"query {qinfo.name!r} carries no ind. sets "
            "(compiled with neither 'under' nor 'over' mode)"
        )
    domain_type = (
        PowersetDomain if isinstance(indset[0], PowersetDomain) else IntervalDomain
    )
    return domain_type.top(qinfo.secret)


def pair_verdict(
    policy: QuantitativePolicy,
    posterior_pair: tuple[AbstractDomain, AbstractDomain],
) -> bool:
    """The ``check_both`` authorization verdict for a posterior pair.

    Secret-independent (the section 3 discipline), so batch callers may
    evaluate it once per distinct prior and feed it back through
    ``evaluate_downgrade``'s ``pair_authorized``.
    """
    return policy(posterior_pair[0]) and policy(posterior_pair[1])


def batch_verdict(
    policy: QuantitativePolicy, domains: list[AbstractDomain]
) -> list[bool]:
    """Policy verdicts for many domains — one vectorized size comparison.

    When the policy is size-encodable (every combinator-built policy is)
    and NumPy is available, all sizes are compared against the floor in
    a single array pass; otherwise the predicate runs per domain.  The
    verdicts are identical either way.
    """
    sizes = [domain.size() for domain in domains]
    if (
        vectoreval.AVAILABLE
        and len(domains) > 1
        and max(sizes) < _SAFE_SIZE_LIMIT
    ):
        np = vectoreval.require_numpy()
        verdicts = verdict_on_sizes(policy, np.asarray(sizes, dtype=np.int64))
        if verdicts is not None:
            return [bool(v) for v in verdicts]
    return [bool(policy(domain)) for domain in domains]


def batch_pair_verdict(
    policy: QuantitativePolicy,
    pairs: list[tuple[AbstractDomain, AbstractDomain]],
) -> list[bool]:
    """:func:`pair_verdict` over many distinct posterior pairs at once."""
    true_side = batch_verdict(policy, [pair[0] for pair in pairs])
    false_side = batch_verdict(policy, [pair[1] for pair in pairs])
    return [t and f for t, f in zip(true_side, false_side)]


def evaluate_downgrade(
    qinfo: QInfo,
    policy: QuantitativePolicy,
    protected: Unprotectable,
    prior: AbstractDomain,
    *,
    mode: str = "under",
    check_both: bool = True,
    posterior_pair: tuple[AbstractDomain, AbstractDomain] | None = None,
    pair_authorized: bool | None = None,
) -> tuple[DowngradeDecision, AbstractDomain | None]:
    """The policy-enforcement core of Figure 2's ``downgrade``.

    This is the per-secret part shared by :class:`AnosyT` and the
    multi-session service layer (:mod:`repro.service.session`): given a
    query's compiled ``qinfo`` and one secret's prior, decide
    authorization, run the query inside the TCB, and return the decision
    together with the posterior to track (``None`` when refused).

    Two batch-caller hooks exploit that everything except the query run
    depends only on the prior, not the secret: ``posterior_pair`` passes
    a pair already intersected for this prior, and ``pair_authorized``
    passes the ``check_both`` policy verdict already evaluated on that
    pair (ignored when ``check_both`` is off, where the verdict depends
    on the response).
    """
    if posterior_pair is None:
        posterior_pair = qinfo.approx(prior, mode=mode)
    post_true, post_false = posterior_pair

    if check_both:
        # The policy must pass on BOTH posteriors before the query runs:
        # the authorization decision is then independent of the secret
        # (the section 3 discipline).
        if pair_authorized is None:
            pair_authorized = pair_verdict(policy, posterior_pair)
        ok = pair_authorized
        response: bool | None = None
    else:
        # Evaluation-faithful mode: run the query, then check only the
        # posterior of the observed response (see EXPERIMENTS.md).
        response = qinfo.run(protected.unprotect_tcb())
        ok = policy(post_true if response else post_false)
    if not ok:
        return (
            DowngradeDecision(
                authorized=False,
                response=None,
                reason=(
                    f"Policy Violation: {policy.name} fails on a "
                    f"posterior of {qinfo.name!r}"
                ),
                kind="policy",
            ),
            None,
        )

    # Inside the TCB: observe the secret and run the query.
    if response is None:
        response = qinfo.run(protected.unprotect_tcb())
    posterior = post_true if response else post_false
    return DowngradeDecision(authorized=True, response=response, reason="ok"), posterior


@dataclass
class AnosyT:
    """The AnosyT state monad transformer, staged on a secure runtime.

    ``mode`` selects which approximation drives enforcement (the paper
    uses ``"under"``; ``"over"`` tracking is also implemented and kept in
    a parallel map when ``track_over`` is set, mirroring the paper's
    remark that over-approximations are traced but not yet used for
    enforcement).
    """

    runtime: SecureRuntime
    policy: QuantitativePolicy
    registry: QueryRegistry
    mode: str = "under"
    #: Check the policy on BOTH posteriors before running the query (the
    #: section 3 discipline: the authorization decision is then independent
    #: of the secret).  With ``check_both=False`` only the posterior of the
    #: actual response is checked — the authorization decision itself may
    #: then leak one bit, but this mode reproduces the magnitudes of the
    #: paper's Figure 6 evaluation (see EXPERIMENTS.md).
    check_both: bool = True
    track_over: bool = False
    secrets: dict[tuple[str, SecretValue], AbstractDomain] = field(default_factory=dict)
    over_knowledge: dict[tuple[str, SecretValue], AbstractDomain] = field(
        default_factory=dict
    )
    history: list[DowngradeRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in ("under", "over"):
            raise ValueError(f"mode must be 'under' or 'over', got {self.mode!r}")

    # -- monad-transformer surface -----------------------------------------
    def lift(self, computation: Callable[[SecureRuntime], T]) -> T:
        """Run a computation of the underlying secure monad."""
        return computation(self.runtime)

    # -- knowledge bookkeeping ----------------------------------------------
    def _key(self, protected: Unprotectable) -> tuple[str, SecretValue]:
        return (protected.spec.name, protected.unprotect_tcb())

    def _top_for(self, qinfo: QInfo) -> AbstractDomain:
        return top_knowledge_for(qinfo)

    def knowledge_of(self, protected: Unprotectable) -> AbstractDomain | None:
        """The currently tracked knowledge for a secret (None = no prior)."""
        return self.secrets.get(self._key(protected))

    # -- the bounded downgrade ------------------------------------------------
    def downgrade(self, protected: Unprotectable, query_name: str) -> bool:
        """Figure 2's ``downgrade``; raises on violation or unknown query."""
        decision = self.try_downgrade(protected, query_name)
        if not decision.authorized:
            if decision.kind == "unknown_query":
                raise UnknownQuery(decision.reason)
            raise PolicyViolation(decision.reason)
        if decision.response is None:
            raise DowngradeInvariantError(
                f"authorized downgrade of {query_name!r} carries no response"
            )
        return decision.response

    def try_downgrade(
        self, protected: Unprotectable, query_name: str
    ) -> DowngradeDecision:
        """Non-raising variant returning the authorization decision."""
        compiled = self.registry.lookup(query_name)
        if compiled is None:
            return DowngradeDecision(
                authorized=False,
                response=None,
                reason=f"Can't downgrade {query_name}",
                kind="unknown_query",
            )
        qinfo = compiled.qinfo
        if qinfo.secret != protected.spec:
            return DowngradeDecision(
                authorized=False,
                response=None,
                reason=(
                    f"query {query_name!r} is over {qinfo.secret.name!r}, "
                    f"secret is {protected.spec.name!r}"
                ),
                kind="spec_mismatch",
            )

        key = self._key(protected)
        # ``is None``, not ``or``: an empty (size-0, potentially falsy)
        # tracked domain must never silently reset knowledge to ⊤.
        prior = self.secrets.get(key)
        if prior is None:
            prior = self._top_for(qinfo)
        decision, posterior = evaluate_downgrade(
            qinfo,
            self.policy,
            protected,
            prior,
            mode=self.mode,
            check_both=self.check_both,
        )
        if not decision.authorized:
            self.history.append(
                DowngradeRecord(
                    query_name=query_name,
                    authorized=False,
                    response=None,
                    prior_size=prior.size(),
                    posterior_size=None,
                )
            )
            return decision

        if posterior is None:
            raise DowngradeInvariantError(
                f"authorized downgrade of {query_name!r} carries no posterior"
            )
        response = decision.response
        self.secrets[key] = posterior

        if self.track_over and qinfo.over_indset is not None:
            over_prior = self.over_knowledge.get(key)
            if over_prior is None:
                over_prior = self._top_for(qinfo)
            over_true, over_false = qinfo.overapprox(over_prior)
            self.over_knowledge[key] = over_true if response else over_false

        self.history.append(
            DowngradeRecord(
                query_name=query_name,
                authorized=True,
                response=response,
                prior_size=prior.size(),
                posterior_size=posterior.size(),
            )
        )
        return decision

    # -- introspection ------------------------------------------------------
    def authorized_count(self) -> int:
        """Number of authorized downgrades so far."""
        return sum(1 for record in self.history if record.authorized)
