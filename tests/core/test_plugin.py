"""End-to-end tests for the compile pipeline and query registry."""

import pytest

from repro.core.plugin import CompileOptions, QueryRegistry, compile_query
from repro.core.synth import SynthOptions
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.ast import var
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.lang.validate import QueryValidationError
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
QUERY = var("x") + var("y") <= 10


class TestCompileQuery:
    def test_interval_compile_produces_verified_pairs(self):
        compiled = compile_query("q", QUERY, SPEC)
        assert compiled.name == "q"
        for mode in ("under", "over"):
            assert compiled.reports[mode].verified
            assert compiled.reports[mode].synth_time >= 0
        assert isinstance(compiled.qinfo.under_indset[0], IntervalDomain)

    def test_powerset_compile(self):
        options = CompileOptions(domain="powerset", k=2)
        compiled = compile_query("q", QUERY, SPEC, options)
        assert isinstance(compiled.qinfo.under_indset[0], PowersetDomain)
        assert compiled.reports["under"].verified

    def test_string_queries_are_parsed(self):
        compiled = compile_query("q", "x + y <= 10", SPEC)
        assert compiled.qinfo.query == QUERY

    def test_under_only_mode(self):
        options = CompileOptions(modes=("under",))
        compiled = compile_query("q", QUERY, SPEC, options)
        assert compiled.qinfo.under_indset is not None
        assert compiled.qinfo.over_indset is None

    def test_verification_can_be_skipped(self):
        options = CompileOptions(verify=False)
        compiled = compile_query("q", QUERY, SPEC, options)
        assert compiled.reports["under"].true_outcome is None
        assert not compiled.reports["under"].verified

    def test_invalid_query_rejected(self):
        with pytest.raises(QueryValidationError):
            compile_query("q", "z <= 1", SPEC)

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            CompileOptions(domain="octagon")
        with pytest.raises(ValueError):
            CompileOptions(modes=("sideways",))

    def test_underapproximation_soundness_end_to_end(self):
        compiled = compile_query("q", QUERY, SPEC)
        true_ind, false_ind = compiled.qinfo.under_indset
        for point in Box(SPEC.bounds()).iter_points():
            env = dict(zip(SPEC.field_names, point))
            if true_ind.contains(point):
                assert eval_bool(QUERY, env)
            if false_ind.contains(point):
                assert not eval_bool(QUERY, env)

    def test_overapproximation_soundness_end_to_end(self):
        compiled = compile_query("q", QUERY, SPEC)
        true_ind, false_ind = compiled.qinfo.over_indset
        for point in Box(SPEC.bounds()).iter_points():
            env = dict(zip(SPEC.field_names, point))
            if eval_bool(QUERY, env):
                assert true_ind.contains(point)
            else:
                assert false_ind.contains(point)

    def test_validation_report_attached(self):
        compiled = compile_query("q", QUERY, SPEC)
        assert compiled.validation.variables == {"x", "y"}


class TestQueryRegistry:
    def test_register_and_lookup(self):
        registry = QueryRegistry()
        compiled = registry.compile_and_register("q", QUERY, SPEC)
        assert registry.lookup("q") is compiled
        assert registry.names() == ["q"]

    def test_lookup_missing_returns_none(self):
        assert QueryRegistry().lookup("nope") is None

    def test_duplicate_names_rejected(self):
        registry = QueryRegistry()
        registry.compile_and_register("q", QUERY, SPEC)
        with pytest.raises(ValueError, match="already registered"):
            registry.compile_and_register("q", QUERY, SPEC)

    def test_registry_with_custom_synth_options(self):
        registry = QueryRegistry()
        options = CompileOptions(synth=SynthOptions(time_budget=1.0))
        compiled = registry.compile_and_register("q", QUERY, SPEC, options)
        assert compiled.reports["under"].verified


class TestCompileCacheHooks:
    def test_compile_query_consults_the_cache(self):
        from repro.service.cache import SynthesisCache

        cache = SynthesisCache()
        cold = compile_query("q1", QUERY, SPEC, cache=cache)
        hot = compile_query("q2", QUERY, SPEC, cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert hot.name == "q2"
        assert hot.qinfo.under_indset == cold.qinfo.under_indset

    def test_cached_hit_still_validates_the_request(self):
        from repro.service.cache import SynthesisCache

        cache = SynthesisCache()
        compile_query("q1", QUERY, SPEC, cache=cache)
        with pytest.raises(QueryValidationError):
            compile_query("q2", "z <= 1", SPEC, cache=cache)

    def test_registry_without_cache_recompiles(self):
        registry = QueryRegistry()
        a = registry.compile_and_register("a", QUERY, SPEC)
        b = registry.compile_and_register("b", QUERY, SPEC)
        assert a is not b
        assert a.qinfo.under_indset == b.qinfo.under_indset
