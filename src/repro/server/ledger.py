"""The privacy-budget ledger: cross-query knowledge accounting per user.

A single downgrade is easy to police; *composition* is where
declassification leaks.  A user who asks ``x <= 200``, then ``y <= 200``,
then ``x <= 100`` passes a per-query policy every time while the
intersection of the answers corners the secret.  Sessions already track
knowledge, but sessions are ephemeral — close one, open another, and the
implicit budget resets.  The ledger makes the cumulative bound explicit
serving-layer state, keyed by a durable user identity.

Per user and secret type the ledger folds every *answered* query into two
lattice bounds, exactly the pair the paper synthesizes:

* the **sound** bound — intersections of under-approximated ind. sets, a
  subset of the true attacker knowledge.  The policy floor is enforced
  here: a monotone floor accepted on a subset holds for the true
  knowledge (the same soundness argument as section 3);
* the **complete** bound — intersections of over-approximated ind. sets,
  a superset of the true knowledge, tracked for reporting when queries
  were compiled with the ``over`` mode.

Two invariants, property-tested in ``tests/server/test_ledger.py``:

1. a refused charge never changes any bound (refusal is observable, so a
   refusal that leaked would be a side channel);
2. after any accepted sequence the sound bound still satisfies the floor
   — :meth:`~PrivacyBudgetLedger.commit` re-checks and raises *before*
   mutating, so not even a caller that skips
   :meth:`~PrivacyBudgetLedger.preauthorize` can cross it.

Admission follows the paper's section 3 discipline via
:func:`~repro.monad.anosy.pair_verdict`: *both* potential posteriors must
clear the floor before the query runs, keeping the accept/refuse decision
independent of the secret.  :meth:`~PrivacyBudgetLedger.evaluate` runs the
whole Figure 2 ``downgrade`` against the ledger bound by delegating to
:func:`~repro.monad.anosy.evaluate_downgrade` with the floor as policy.

Two serving-scale concerns live here as well:

* **Durability** — budgets are contracts attached to principals, not
  per-process state.  With a ``store`` attached (any
  :class:`LedgerBackend`, e.g. :class:`~repro.server.store.SQLiteStore`),
  every bound mutation is written through as a format-versioned JSON
  payload and the full account table is reloaded on attach, so a process
  restart cannot launder a budget (bounds survive exactly like compiled
  artifacts do).
* **Decay** — a strict intersection fold means long-lived users
  monotonically approach the floor and eventually saturate.  A
  :class:`DecayPolicy` dilates every bound by a configured radius per
  epoch (:meth:`~PrivacyBudgetLedger.advance_epoch`); dilation only ever
  *grows* a bound, so the decayed bound remains a sound
  over-approximation of any knowledge the attacker retains — the
  property test in ``tests/server/test_ledger.py`` checks exactly that
  ("decay is never tighter").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Protocol

from repro.core.qinfo import QInfo, intersect_knowledge
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.canonical import spec_from_json, spec_to_json
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import (
    DowngradeDecision,
    DowngradeInvariantError,
    batch_pair_verdict,
    evaluate_downgrade,
    pair_verdict,
    top_knowledge_for,
)
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import Unprotectable
from repro.obs.metrics import NULL_REGISTRY
from repro.service.serialize import domain_from_json, domain_to_json
from repro.solver.boxes import Box

__all__ = [
    "LEDGER_FORMAT_VERSION",
    "LedgerBackend",
    "LedgerFormatError",
    "LedgerInvariantError",
    "LedgerDecision",
    "ChargeRecord",
    "BudgetAccount",
    "DecayPolicy",
    "PrivacyBudgetLedger",
]

#: Bumped whenever the persisted bound payload changes incompatibly.
LEDGER_FORMAT_VERSION = 1


class LedgerFormatError(RuntimeError):
    """A persisted ledger payload was written by an incompatible codec."""


class LedgerInvariantError(RuntimeError):
    """A commit would have pushed a sound bound across the policy floor."""


class LedgerBackend(Protocol):
    """Durable storage for per-user knowledge bounds.

    Payloads are the JSON dictionaries built by
    :meth:`PrivacyBudgetLedger.export_bound`; the backend stores them
    opaquely, keyed by ``(user_id, spec_name)``.
    :class:`~repro.server.store.SQLiteStore` implements this next to its
    artifact table, so one file holds everything a restart must not lose.
    """

    def put_ledger_bound(
        self, user_id: str, spec_name: str, payload: dict[str, Any]
    ) -> None:
        """Durably store one user's bound payload (last write wins)."""
        ...  # pragma: no cover - protocol

    def ledger_bounds(self) -> Iterator[tuple[str, str, dict[str, Any]]]:
        """Iterate all ``(user_id, spec_name, payload)`` rows."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class LedgerDecision:
    """The outcome of a ledger admission check."""

    allowed: bool
    reason: str
    #: Size of the sound bound the decision was made against (the user's
    #: remaining budget *before* this query).
    remaining: int


@dataclass(frozen=True)
class ChargeRecord:
    """One committed charge against a user's budget."""

    query_name: str
    spec_name: str
    response: bool
    prior_size: int
    posterior_size: int


@dataclass
class BudgetAccount:
    """One user's cumulative knowledge bounds, keyed by secret type.

    Bounds are the durable contract (persisted through the attached
    :class:`LedgerBackend`); ``charges`` and ``refusals`` are per-process
    observability and reset on restart.
    """

    user_id: str
    #: Sound (under-approximated) bounds; absent key = still the full space.
    sound: dict[str, AbstractDomain] = field(default_factory=dict)
    #: Complete (over-approximated) bounds, tracked when available.
    complete: dict[str, AbstractDomain] = field(default_factory=dict)
    charges: list[ChargeRecord] = field(default_factory=list)
    refusals: int = 0


@dataclass(frozen=True)
class DecayPolicy:
    """Budget decay: dilate knowledge bounds by a radius per epoch.

    A strict intersection fold never forgets, so long-lived users drift
    monotonically toward the floor.  Decay models attacker knowledge
    going stale (secrets drift, answers age): each epoch every tracked
    bound is *dilated* — interval boxes and powerset include-boxes widen
    by ``radius`` cells per axis (clamped to the secret space), powerset
    exclude-boxes shrink by the same radius (dropped when they collapse).
    Every step only ever grows the represented set, so a decayed bound
    is still a sound over-approximation of whatever the attacker
    actually retains — decay can only make the ledger *more*
    conservative about what it refuses, never less.
    """

    #: Cells of dilation per axis, per epoch (0 = decay disabled).
    radius: int = 1

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"radius must be >= 0, got {self.radius}")

    def dilate(self, bound: AbstractDomain) -> AbstractDomain:
        """One epoch's dilation of a bound (always ⊇ the input)."""
        if self.radius == 0:
            return bound
        space = Box(bound.spec.bounds())
        if isinstance(bound, IntervalDomain):
            if bound.box is None:
                return bound
            return IntervalDomain(bound.spec, self._grow(bound.box, space))
        if isinstance(bound, PowersetDomain):
            include = tuple(self._grow(box, space) for box in bound.include)
            exclude = tuple(
                shrunk
                for box in bound.exclude
                if (shrunk := self._shrink(box)) is not None
            )
            return PowersetDomain(bound.spec, include, exclude)
        raise TypeError(f"cannot dilate domain type {type(bound)}")

    def _grow(self, box: Box, space: Box) -> Box:
        return Box(
            tuple(
                (max(slo, lo - self.radius), min(shi, hi + self.radius))
                for (lo, hi), (slo, shi) in zip(box.bounds, space.bounds)
            )
        )

    def _shrink(self, box: Box) -> Box | None:
        bounds = tuple(
            (lo + self.radius, hi - self.radius) for lo, hi in box.bounds
        )
        if any(lo > hi for lo, hi in bounds):
            return None
        return Box(bounds)

    def to_json(self) -> dict[str, Any]:
        """Encode for the shard-process configure op."""
        return {"radius": self.radius}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "DecayPolicy":
        """Decode a policy encoded by :meth:`to_json`."""
        return cls(radius=int(data["radius"]))


class PrivacyBudgetLedger:
    """Per-user cumulative knowledge bounds under a policy floor.

    ``floor`` is a monotone :class:`~repro.monad.policy.QuantitativePolicy`
    (e.g. ``size_above(10_000)``): the minimum uncertainty every user's
    sound bound must retain, across all queries they will ever ask.

    ``store`` (optional) makes the ledger durable: every bound mutation
    is written through to the backend and all persisted bounds are
    reloaded on construction, format-version-guarded — a restarted
    server refuses exactly what the killed one refused.  ``decay``
    (optional) enables :meth:`advance_epoch`.
    """

    def __init__(
        self,
        floor: QuantitativePolicy,
        *,
        store: LedgerBackend | None = None,
        decay: DecayPolicy | None = None,
    ):
        self.floor = floor
        self.store = store
        self.decay = decay
        #: Settable metrics registry (``repro.obs``); the gateway swaps in
        #: its hub's registry.  Refusal counts are decision-channel (the
        #: pair-checked verdict is secret-independent); remaining-cell
        #: sizes are declassified-channel (derived from committed bounds).
        self.metrics: Any = NULL_REGISTRY
        self.epoch = 0
        self._accounts: dict[str, BudgetAccount] = {}
        self._lock = threading.RLock()
        #: ``None`` = write-through durable mirror (every commit puts its
        #: bound immediately).  A journaled gateway switches to buffered
        #: mode (:meth:`buffer_writes`) so it can land each tick's bound
        #: puts in the *same* transaction as the journal acknowledgement.
        self._buffered: list[tuple[str, str, dict[str, Any]]] | None = None
        if store is not None:
            for user_id, spec_name, payload in list(store.ledger_bounds()):
                self.apply_payload(user_id, spec_name, payload, persist=False)

    # -- accounts ------------------------------------------------------------
    def account(self, user_id: str) -> BudgetAccount:
        """The user's account, created on first touch."""
        with self._lock:
            account = self._accounts.get(user_id)
            if account is None:
                account = BudgetAccount(user_id=user_id)
                self._accounts[user_id] = account
            return account

    def users(self) -> list[str]:
        """Users with an account, sorted."""
        with self._lock:
            return sorted(self._accounts)

    def sound_bound(self, user_id: str, spec: SecretSpec) -> AbstractDomain | None:
        """The user's sound bound for a secret type (``None`` = full space)."""
        with self._lock:
            return self.account(user_id).sound.get(spec.name)

    def remaining(self, user_id: str, spec: SecretSpec) -> int:
        """Size of the user's sound bound (full space if untouched)."""
        with self._lock:
            bound = self.account(user_id).sound.get(spec.name)
            return spec.space_size() if bound is None else bound.size()

    # -- admission -----------------------------------------------------------
    def _count_refusal(self, kind: str = "budget") -> None:
        if self.metrics:
            self.metrics.counter(
                "anosy_ledger_refusals_total",
                "Ledger admission refusals by kind.",
                labels=("kind",),
            ).labels(kind=kind).inc()

    def _observe_remaining(self, remaining: int) -> None:
        if self.metrics:
            self.metrics.histogram(
                "anosy_ledger_remaining_cells",
                "Sound-bound size (cells) at admission time.",
                channel="declassified",
            ).observe(float(remaining))

    def preauthorize(
        self, user_id: str, qinfo: QInfo, *, mode: str = "under"
    ) -> LedgerDecision:
        """Would answering this query keep the user above the floor?

        Checks the floor on *both* potential posteriors of the user's
        current sound bound (secret-independent, per section 3).  Never
        mutates a bound; a refusal is tallied on the account.
        """
        with self._lock:
            account = self.account(user_id)
            prior = self._sound_prior(account, qinfo)
            pair = qinfo.approx(prior, mode=mode)
            remaining = prior.size()
            self._observe_remaining(remaining)
            if pair_verdict(self.floor, pair):
                return LedgerDecision(
                    allowed=True, reason="ok", remaining=remaining
                )
            account.refusals += 1
            self._count_refusal()
            return LedgerDecision(
                allowed=False,
                reason=(
                    f"budget exhausted: {self.floor.name} would fail on a "
                    f"posterior of {qinfo.name!r}"
                ),
                remaining=prior.size(),
            )

    def preauthorize_batch(
        self, user_ids: Iterable[str], qinfo: QInfo, *, mode: str = "under"
    ) -> dict[str, LedgerDecision]:
        """Batch admission: one floor check per *distinct* sound bound.

        Per-user decisions are identical to calling :meth:`preauthorize`
        for each user — same reasons, same ``remaining``, one refusal
        tallied per refused user — but whole fleets sharing a bound (the
        common case: fresh users all sit at the full space) cost one
        posterior intersection and one vectorized bound-size check.
        Duplicate ids collapse to one decision; serving rounds are
        already unique per user (:func:`repro.server.workers.rounds_by_user`).
        """
        with self._lock:
            ids = list(dict.fromkeys(user_ids))
            priors = [
                self._sound_prior(self.account(uid), qinfo) for uid in ids
            ]
            group: dict[AbstractDomain, int] = {}
            keys: list[int] = []
            distinct: list[AbstractDomain] = []
            for prior in priors:
                key = group.get(prior)
                if key is None:
                    key = len(distinct)
                    group[prior] = key
                    distinct.append(prior)
                keys.append(key)
            pairs = qinfo.approx_batch(distinct, mode=mode)
            allowed = batch_pair_verdict(self.floor, pairs)
            remaining = [prior.size() for prior in distinct]
            granted = [
                LedgerDecision(allowed=True, reason="ok", remaining=remaining[k])
                if allowed[k]
                else LedgerDecision(
                    allowed=False,
                    reason=(
                        f"budget exhausted: {self.floor.name} would fail on a "
                        f"posterior of {qinfo.name!r}"
                    ),
                    remaining=remaining[k],
                )
                for k in range(len(distinct))
            ]
            decisions: dict[str, LedgerDecision] = {}
            for uid, key in zip(ids, keys):
                decision = granted[key]
                self._observe_remaining(decision.remaining)
                if not decision.allowed:
                    self.account(uid).refusals += 1
                    self._count_refusal()
                decisions[uid] = decision
            return decisions

    # -- charging ------------------------------------------------------------
    def commit(
        self, user_id: str, qinfo: QInfo, response: bool, *, mode: str = "under"
    ) -> AbstractDomain:
        """Fold one answered query into the user's bounds.

        Only call this for queries that were actually answered.  The floor
        is re-checked on the new sound bound *before* any mutation — a
        commit that would cross it raises :class:`LedgerInvariantError`
        and changes nothing, so invariant 2 holds even against callers
        that skipped :meth:`preauthorize`.
        """
        with self._lock:
            account = self.account(user_id)
            prior = self._sound_prior(account, qinfo)
            true_ind, false_ind = qinfo.indset_pair(mode=mode)
            posterior = intersect_knowledge(
                prior, true_ind if response else false_ind
            )
            if not self.floor(posterior):
                raise LedgerInvariantError(
                    f"committing {qinfo.name!r} for {user_id!r} would cross "
                    f"the floor {self.floor.name}"
                )
            spec_name = qinfo.secret.name
            account.sound[spec_name] = posterior
            if qinfo.over_indset is not None:
                over_prior = account.complete.get(spec_name)
                if over_prior is None:
                    over_prior = top_knowledge_for(qinfo)
                over_true, over_false = qinfo.indset_pair(mode="over")
                account.complete[spec_name] = intersect_knowledge(
                    over_prior, over_true if response else over_false
                )
            account.charges.append(
                ChargeRecord(
                    query_name=qinfo.name,
                    spec_name=spec_name,
                    response=response,
                    prior_size=prior.size(),
                    posterior_size=posterior.size(),
                )
            )
            self._persist(user_id, qinfo.secret)
            return posterior

    def evaluate(
        self,
        user_id: str,
        qinfo: QInfo,
        protected: Unprotectable,
        *,
        mode: str = "under",
        check_both: bool = True,
    ) -> DowngradeDecision:
        """Figure 2's ``downgrade`` run directly against the ledger bound.

        Reuses :func:`~repro.monad.anosy.evaluate_downgrade` with the
        floor as the policy and the user's sound bound as the prior, then
        folds the posterior on authorization.  This is the standalone
        entry point; the gateway uses the split
        :meth:`preauthorize`/:meth:`commit` form because the query itself
        runs inside :class:`~repro.service.session.SessionManager`.
        """
        with self._lock:
            account = self.account(user_id)
            prior = self._sound_prior(account, qinfo)
            decision, posterior = evaluate_downgrade(
                qinfo,
                self.floor,
                protected,
                prior,
                mode=mode,
                check_both=check_both,
            )
            if not decision.authorized:
                account.refusals += 1
                return decision
            if posterior is None or decision.response is None:
                raise DowngradeInvariantError(
                    f"authorized ledger downgrade of {qinfo.name!r} carries "
                    "no response or posterior"
                )
            self.commit(user_id, qinfo, decision.response, mode=mode)
            return decision

    # -- durability ----------------------------------------------------------
    def export_bound(self, user_id: str, spec: SecretSpec) -> dict[str, Any]:
        """The persistable payload of one user's bounds for one spec.

        The same shape the backend stores and the shard tier ships as
        ledger deltas: format version, the spec itself (so decoding
        needs no external registry), both bounds, and the epoch.
        """
        with self._lock:
            account = self.account(user_id)
            sound = account.sound.get(spec.name)
            complete = account.complete.get(spec.name)
            return {
                "version": LEDGER_FORMAT_VERSION,
                "spec": spec_to_json(spec),
                "sound": None if sound is None else domain_to_json(sound),
                "complete": None if complete is None else domain_to_json(complete),
                "epoch": self.epoch,
            }

    def apply_payload(
        self,
        user_id: str,
        spec_name: str,
        payload: dict[str, Any],
        *,
        persist: bool = True,
        monotone: bool = False,
    ) -> None:
        """Overwrite one user's bounds from an :meth:`export_bound` payload.

        Used on attach (reloading the backend) and by the gateway to fold
        authoritative shard-side deltas into its durable mirror.  By
        default the payload wins unconditionally — callers own the
        ordering.  With ``monotone=True`` (the gateway's delta-fold
        mode) an incoming bound is *intersected* with any existing one
        and an absent incoming bound keeps the existing one: replayed,
        reordered, or stale deltas — retries, duplicate deliveries, a
        rehydrated shard echoing its snapshot — can tighten the mirror
        but can never loosen it.  (Loosening is the job of epoch decay,
        which acts on the mirror directly, never through payloads.)
        """
        version = payload.get("version")
        if version != LEDGER_FORMAT_VERSION:
            raise LedgerFormatError(
                f"ledger payload for {user_id!r}/{spec_name!r} has format "
                f"version {version!r}, this codec speaks {LEDGER_FORMAT_VERSION}"
            )
        spec = spec_from_json(payload["spec"])
        with self._lock:
            account = self.account(user_id)
            for bounds, key in ((account.sound, "sound"), (account.complete, "complete")):
                encoded = payload.get(key)
                if encoded is None:
                    if not monotone:
                        bounds.pop(spec_name, None)
                    continue
                incoming = domain_from_json(encoded, spec)
                existing = bounds.get(spec_name)
                if monotone and existing is not None:
                    incoming = intersect_knowledge(existing, incoming)
                bounds[spec_name] = incoming
            self.epoch = max(self.epoch, int(payload.get("epoch", 0)))
            if persist:
                self._persist(user_id, spec)

    # -- decay ---------------------------------------------------------------
    def advance_epoch(self, epochs: int = 1) -> int:
        """Dilate every tracked bound ``epochs`` times; returns the epoch.

        Requires a :class:`DecayPolicy`.  Dilation only grows bounds
        (soundness is preserved — see :class:`DecayPolicy`), so a user
        parked at the floor regains budget as their stale knowledge
        bound relaxes.  New bounds are written through to the store.
        """
        if self.decay is None:
            raise ValueError("advance_epoch requires a DecayPolicy")
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        with self._lock:
            self.epoch += epochs
            for account in self._accounts.values():
                specs: dict[str, SecretSpec] = {}
                for bounds in (account.sound, account.complete):
                    for spec_name, bound in list(bounds.items()):
                        for _ in range(epochs):
                            bound = self.decay.dilate(bound)
                        bounds[spec_name] = bound
                        specs[spec_name] = bound.spec
                for spec in specs.values():
                    self._persist(account.user_id, spec)
            return self.epoch

    # -- durable-mirror buffering --------------------------------------------
    def buffer_writes(self) -> None:
        """Switch the durable mirror to buffered (journal-atomic) mode.

        Commits and decay keep mutating the in-memory bounds immediately,
        but their store puts accumulate in a buffer instead of writing
        through; the owner drains the buffer (:meth:`drain_writes`) and
        persists it in one transaction with the matching journal
        acknowledgement.  That atomicity is what collapses the
        executed-but-unacknowledged crash window: after a crash, either
        both the bound and the ack are durable or neither is, so
        recovery's re-execution always starts from the same prior the
        original execution saw.
        """
        with self._lock:
            if self._buffered is None:
                self._buffered = []

    def drain_writes(self) -> list[tuple[str, str, dict[str, Any]]]:
        """Take every buffered ``(user_id, spec_name, payload)`` put.

        Returns ``[]`` in write-through mode.  The caller owns the
        drained writes and must persist them (a journaled gateway lands
        them inside the ack transaction; shutdown flushes stragglers).
        """
        with self._lock:
            if self._buffered is None:
                return []
            drained, self._buffered = self._buffered, []
            return drained

    # -- internals -----------------------------------------------------------
    def _persist(self, user_id: str, spec: SecretSpec) -> None:
        if self.store is None:
            return
        payload = self.export_bound(user_id, spec)
        with self._lock:
            if self._buffered is not None:
                self._buffered.append((user_id, spec.name, payload))
                return
        self.store.put_ledger_bound(user_id, spec.name, payload)

    def _sound_prior(self, account: BudgetAccount, qinfo: QInfo) -> AbstractDomain:
        bound = account.sound.get(qinfo.secret.name)
        return top_knowledge_for(qinfo) if bound is None else bound
