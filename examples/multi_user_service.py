#!/usr/bin/env python3
"""A multi-tenant location service: one registry, thousands of sessions.

The paper's `nearby` scenario (section 2) scaled up the way a real
deployment would run it: queries are compiled once into a shared registry
(second and later tenants hit the synthesis cache), every connected user
gets an independent knowledge-tracked session, and the advertiser's
"who is near this billboard?" sweep is answered for the whole fleet with
one batched pass.

Run:  python examples/multi_user_service.py
"""

import random
import time

from repro import DeclassificationService, SecretSpec, size_above
from repro.core.plugin import CompileOptions
from repro.service.api import BatchDowngradeRequest, CompileRequest, DowngradeRequest


def main() -> None:
    spec = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
    service = DeclassificationService(
        size_above(100), options=CompileOptions(modes=("under",))
    )

    # -- compile once ----------------------------------------------------------
    # Three billboards; note the second is the first query written by another
    # tenant with its conjuncts flipped — the canonical cache key catches it.
    billboards = {
        "near_plaza": "abs(x - 200) + abs(y - 200) <= 100",
        "near_plaza_again": "abs(y - 200) + abs(x - 200) <= 100",
        "near_station": "abs(x - 50) + abs(y - 310) <= 80",
    }
    print(f"{'query':<18} {'cache':>6} {'synth (ms)':>11}")
    for name, text in billboards.items():
        receipt = service.register_query(CompileRequest(name, text, spec))
        print(
            f"{name:<18} {'HIT' if receipt.cache_hit else 'MISS':>6} "
            f"{receipt.synth_time * 1000:>11.2f}"
        )
    stats = service.cache.stats
    print(f"cache: {stats.hits} hits / {stats.misses} misses\n")

    # -- open a fleet of sessions ---------------------------------------------
    rng = random.Random(7)
    n_users = 2000
    for i in range(n_users):
        service.open_session(
            f"user-{i}", (spec, (rng.randrange(400), rng.randrange(400)))
        )

    # -- one batched sweep per billboard --------------------------------------
    for name in ("near_plaza", "near_station"):
        start = time.perf_counter()
        results = service.handle_batch(BatchDowngradeRequest(name))
        elapsed = time.perf_counter() - start
        granted = sum(1 for r in results if r.authorized)
        positive = sum(1 for r in results if r.response)
        print(
            f"{name}: {len(results)} sessions in {elapsed * 1000:.1f} ms "
            f"({len(results) / elapsed:,.0f}/s) — "
            f"{granted} authorized, {positive} nearby"
        )

    # -- per-session knowledge stays independent ------------------------------
    sample = service.manager.session("user-0")
    print(
        f"\nuser-0 knowledge after sweeps: {sample.knowledge_size()} candidate "
        f"locations (of {spec.space_size()})"
    )
    follow_up = service.handle(DowngradeRequest("user-0", "near_plaza"))
    print(f"user-0 asks near_plaza again: authorized={follow_up.authorized} "
          f"response={follow_up.response}")

    print(f"\naudit trail: {len(service.audit)} events "
          f"(last: {service.audit[-1].kind} {service.audit[-1].data})")


if __name__ == "__main__":
    main()
