"""The Figure 4 specifications: approximations of ind. sets and knowledge.

For a boolean ``query`` over secrets, Figure 4 of the paper gives the
refinement types of the four artifacts ANOSY synthesizes and verifies:

==================  =====================================================
``under_indset``    ``( a <query x,        true>, a <not query x,      true> )``
``over_indset``     ``( a <true, not query x>,    a <true,    query x> )``
``underapprox p``   ``( a <query x and x ∈ p,  true>, a <not query x and x ∈ p, true> )``
``overapprox p``    ``( a <true, not query x or x ∉ p>, a <true, query x or x ∉ p> )``
==================  =====================================================

Each function below builds the corresponding pair of
:class:`~repro.refine.spec.Refinement` indexes.  Priors are passed as
domains; their membership formula stands in for ``x ∈ p`` (this is exactly
the trick the Haskell encoding plays with abstract refinements, made
explicit).
"""

from __future__ import annotations

from repro.lang.ast import BoolExpr, Not
from repro.lang.transform import conjoin, disjoin, nnf
from repro.domains.base import AbstractDomain
from repro.refine.spec import Refinement

__all__ = [
    "under_indset_spec",
    "over_indset_spec",
    "underapprox_spec",
    "overapprox_spec",
]

SpecPair = tuple[Refinement, Refinement]


def under_indset_spec(query: BoolExpr) -> SpecPair:
    """Specs for under-approximated ind. sets: (True response, False response).

    The True-side domain may only contain secrets satisfying the query; the
    False-side domain only secrets falsifying it.  No constraint on what is
    left out (that is what makes it an under-approximation).
    """
    return (
        Refinement(positive=query),
        Refinement(positive=nnf(Not(query))),
    )


def over_indset_spec(query: BoolExpr) -> SpecPair:
    """Specs for over-approximated ind. sets.

    Everything *outside* the True-side domain must falsify the query (so no
    query-satisfying secret is missed), and dually for the False side.
    """
    return (
        Refinement(negative=nnf(Not(query))),
        Refinement(negative=query),
    )


def underapprox_spec(query: BoolExpr, prior: AbstractDomain) -> SpecPair:
    """Specs for the under-approximated posterior knowledge given a prior.

    Members must satisfy the query (resp. its negation) *and* belong to the
    prior knowledge ``p``.
    """
    in_prior = prior.member_formula()
    return (
        Refinement(positive=conjoin((query, in_prior))),
        Refinement(positive=conjoin((nnf(Not(query)), in_prior))),
    )


def overapprox_spec(query: BoolExpr, prior: AbstractDomain) -> SpecPair:
    """Specs for the over-approximated posterior knowledge given a prior.

    Non-members must falsify the query (resp. satisfy it) *or* lie outside
    the prior — i.e. the posterior keeps every prior-consistent secret with
    the observed response.
    """
    not_in_prior = nnf(Not(prior.member_formula()))
    return (
        Refinement(negative=disjoin((nnf(Not(query)), not_in_prior))),
        Refinement(negative=disjoin((query, not_in_prior))),
    )
