"""Split selection for branch-and-bound: heuristics + precompiled hints.

The splitting strategy is shared by every decision procedure and by both
evaluation engines (the tree-walking interpreter and the compiled kernels
of :mod:`repro.solver.kernels`):

* :func:`choose_split` — boundary-guided selection.  If some undecided
  atom constrains a single variable by a constant *inside its current
  range*, cut exactly there so the atom decides on both sides; fall back
  to bisecting the widest live dimension.
* :func:`extract_split_hints` / :func:`choose_split_hinted` — the same
  decision split into a *compile-time* extraction (atom walk, linear-term
  normalization, name-to-dimension resolution, done once per formula) and
  a cheap per-box replay.  ``choose_split`` simply extracts and replays,
  so the two paths cannot diverge — which is what keeps the kernel
  engine's search trees bit-identical to the interpreter's (asserted by
  the differential tests).

Atoms are normalized to ``t_1 + ... + t_n  op  C`` where each term is
``k·x`` or ``a·|k·x + s|`` and ``C`` absorbs every literal.  Each term
then yields cut candidates from the slack the *other* terms leave it:
for ``Σt ≤ C`` the atom can only hold where ``t_i ≤ C - Σ_{j≠i} min t_j``,
and for ``Σt ≥ C`` it must hold where ``t_i ≥ C - Σ_{j≠i} min t_j``.
Inverting a term over its variable turns those bounds into exact cut
coordinates.  This is what collapses the Manhattan-ball queries that
dominate the paper's benchmarks (``|x-cx| + |y-cy| <= r``): the cuts land
exactly on the ball's bounding-box faces instead of bisecting blindly
along the boundary.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.ast import (
    Abs,
    Add,
    BoolExpr,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    IntExpr,
    Lit,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.ast import And as AstAnd
from repro.lang.transform import free_vars
from repro.solver.boxes import Box

__all__ = [
    "var_bound",
    "walk_atoms",
    "choose_split",
    "split_at",
    "SplitHint",
    "extract_split_hints",
    "choose_split_hinted",
]

#: Most atoms in real queries have a handful of terms; anything larger is
#: unlikely to produce useful cuts and would slow hint replay.
_MAX_TERMS = 8


def var_bound(atom: BoolExpr) -> tuple[str, CmpOp, int] | None:
    """Normalize a single-variable bound atom to ``(name, op, const)``.

    Recognizes ``x op c`` modulo one level of linear wrapping
    (``x + a op c``, ``x - a op c``, ``c op x``, ``-x op c``,
    ``k * x op c``).  The sum-of-terms normalization below subsumes this
    for orderings; it remains the cut source for ``==`` / ``!=`` atoms.
    """
    if not isinstance(atom, Cmp):
        return None
    op, left, right = atom.op, atom.left, atom.right
    if isinstance(left, Lit) and not isinstance(right, Lit):
        left, right, op = right, left, op.flip()
    if not isinstance(right, Lit):
        return None
    c = right.value
    match left:
        case Var(name):
            return name, op, c
        case Add(Var(name), Lit(a)) | Add(Lit(a), Var(name)):
            return name, op, c - a
        case Sub(Var(name), Lit(a)):
            return name, op, c + a
        case Sub(Lit(a), Var(name)):
            return name, op.flip(), a - c
        case Neg(Var(name)):
            return name, op.flip(), -c
        case Scale(k, Var(name)) if k > 0 and c % k == 0:
            return name, op, c // k
        case _:
            return None


def walk_atoms(expr: BoolExpr):
    """Yield the ``Cmp``/``InSet`` atoms of a formula, in a fixed order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        match node:
            case Cmp() | InSet():
                yield node
            case AstAnd(args) | Or(args):
                stack.extend(args)
            case Not(arg):
                stack.append(arg)
            case Implies(a, b) | Iff(a, b):
                stack.extend((a, b))
            case _:
                pass


# ---------------------------------------------------------------------------
# Sum-of-terms normalization
# ---------------------------------------------------------------------------
# A parsed term is ("lin", dim, k) meaning k*x_dim, or ("abs", dim, k, s, a)
# meaning a*|k*x_dim + s|.


def _ceil_div(p: int, q: int) -> int:
    return -((-p) // q)


class _ParseFailure(Exception):
    pass


def _collect_terms(
    expr: IntExpr, sign: int, index_of: dict[str, int], lin: dict[int, int],
    abs_terms: list, const: list[int],
) -> None:
    """Accumulate ``sign * expr`` into linear coefficients / abs terms."""
    if sign == 0:
        return
    match expr:
        case Lit(value):
            const[0] += sign * value
        case Var(name):
            dim = index_of[name]
            lin[dim] = lin.get(dim, 0) + sign
        case Add(left, right):
            _collect_terms(left, sign, index_of, lin, abs_terms, const)
            _collect_terms(right, sign, index_of, lin, abs_terms, const)
        case Sub(left, right):
            _collect_terms(left, sign, index_of, lin, abs_terms, const)
            _collect_terms(right, -sign, index_of, lin, abs_terms, const)
        case Neg(arg):
            _collect_terms(arg, -sign, index_of, lin, abs_terms, const)
        case Scale(coeff, arg):
            _collect_terms(arg, sign * coeff, index_of, lin, abs_terms, const)
        case Abs(arg):
            inner = _linear_inner(arg, index_of)
            if inner is None:
                raise _ParseFailure
            dim, k, s = inner
            abs_terms.append(("abs", dim, k, s, sign))
        case _:
            raise _ParseFailure


def _linear_inner(
    expr: IntExpr, index_of: dict[str, int]
) -> tuple[int, int, int] | None:
    """Parse a single-variable linear expression into ``(dim, k, s)``."""
    lin: dict[int, int] = {}
    abs_terms: list = []
    const = [0]
    try:
        _collect_terms(expr, 1, index_of, lin, abs_terms, const)
    except _ParseFailure:
        return None
    if abs_terms:
        return None
    live = {dim: k for dim, k in lin.items() if k != 0}
    if len(live) != 1:
        return None
    ((dim, k),) = live.items()
    return dim, k, const[0]


def _parse_sum_atom(atom: Cmp, index_of: dict[str, int]):
    """Normalize an ordering atom to ``("sum", op, C, terms)`` or ``None``."""
    op = atom.op
    if op is CmpOp.LT:
        norm_op, adjust = CmpOp.LE, -1  # integer sums: t < c  <=>  t <= c-1
    elif op is CmpOp.GT:
        norm_op, adjust = CmpOp.GE, 1
    elif op is CmpOp.LE or op is CmpOp.GE:
        norm_op, adjust = op, 0
    else:
        return None
    lin: dict[int, int] = {}
    abs_terms: list = []
    const = [0]
    try:
        _collect_terms(atom.left, 1, index_of, lin, abs_terms, const)
        _collect_terms(atom.right, -1, index_of, lin, abs_terms, const)
    except _ParseFailure:
        return None
    terms = tuple(
        ("lin", dim, k) for dim, k in lin.items() if k != 0
    ) + tuple(abs_terms)
    if not terms or len(terms) > _MAX_TERMS:
        return None
    return ("sum", norm_op, -const[0] + adjust, terms)


def _abs_range(lo: int, hi: int, k: int, s: int) -> tuple[int, int]:
    """Range of ``|k*x + s|`` for ``x`` in ``[lo, hi]``."""
    if k > 0:
        ulo, uhi = k * lo + s, k * hi + s
    else:
        ulo, uhi = k * hi + s, k * lo + s
    if ulo >= 0:
        return ulo, uhi
    if uhi <= 0:
        return -uhi, -ulo
    return 0, max(-ulo, uhi)


def _term_min(term, bounds) -> int:
    if term[0] == "lin":
        _, dim, k = term
        lo, hi = bounds[dim]
        return k * lo if k > 0 else k * hi
    _, dim, k, s, a = term
    alo, ahi = _abs_range(*bounds[dim], k, s)
    return a * alo if a > 0 else a * ahi


def _sum_cuts(op: CmpOp, bound: int, terms, bounds, out: list) -> None:
    """Append candidate ``(dim, cut)`` pairs of a normalized sum atom.

    ``Σt op bound``: the slack the other terms' minima leave a term bounds
    where the atom can hold (``<=``) or must hold (``>=``); inverting the
    term over its variable turns the bound into cut coordinates.
    """
    total_min = 0
    mins = []
    for term in terms:
        m = _term_min(term, bounds)
        mins.append(m)
        total_min += m
    le = op is CmpOp.LE
    for index, term in enumerate(terms):
        slack = bound - (total_min - mins[index])
        if term[0] == "lin":
            _, dim, k = term
            if le:
                # k*x <= slack is necessary for the atom.
                out.append((dim, slack // k) if k > 0 else (dim, _ceil_div(slack, k) - 1))
            else:
                # k*x >= slack is sufficient for the atom.
                out.append((dim, _ceil_div(slack, k) - 1) if k > 0 else (dim, slack // k))
            continue
        _, dim, k, s, a = term
        if a <= 0:
            continue
        if le:
            # a*|k*x+s| <= slack is necessary: x confined to one interval.
            m = slack // a
            if m < 0:
                continue
            if k > 0:
                x_lo, x_hi = _ceil_div(-m - s, k), (m - s) // k
            else:
                x_lo, x_hi = _ceil_div(m - s, k), (-m - s) // k
            out.append((dim, x_lo - 1))
            out.append((dim, x_hi))
        else:
            # a*|k*x+s| >= need is sufficient: x outside one interval.
            need = _ceil_div(slack, a)
            if need <= 0:
                continue
            if k > 0:
                out.append((dim, (-need - s) // k))
                out.append((dim, _ceil_div(need - s, k) - 1))
            else:
                out.append((dim, (need - s) // k))
                out.append((dim, _ceil_div(-need - s, k) - 1))


# ---------------------------------------------------------------------------
# Hints: per-formula extraction + per-box replay
# ---------------------------------------------------------------------------

#: One candidate cut source.  ``kind`` is ``"sum"`` (normalized ordering
#: atom), ``"cmp"`` (single-variable ``==``/``!=`` bound), or ``"inset"``.
SplitHint = tuple


def _cmp_cut(op: CmpOp, c: int, hi: int) -> int:
    """The cut a ``==``/``!=`` bound atom suggests (isolate ``c`` low)."""
    return c if c < hi else c - 1


def _inset_cut(members: list[int], lo: int, hi: int) -> int | None:
    """The cut an ``InSet`` atom suggests: the end of the first member run."""
    if not members:
        return None
    if lo < members[0]:
        return members[0] - 1
    run_end = members[0]
    for value in members[1:]:
        if value != run_end + 1:
            break
        run_end = value
    if run_end < hi:
        return run_end
    return None


def _simplify_sum_hint(hint) -> list:
    """Constant-fold a single-term sum hint into fixed ``("cut", ...)`` hints.

    With no other terms the slack equals the bound regardless of the box
    (the term's own minimum cancels out of :func:`_sum_cuts`' arithmetic),
    so the cut coordinates are constants — most box-membership region
    atoms (``x >= 150``) and single-``abs`` bounds fold this way, which
    keeps hint replay O(1) per such atom.  Delegates to :func:`_sum_cuts`
    with placeholder bounds so there is exactly one copy of the cut math.
    """
    _, op, bound, terms = hint
    if len(terms) != 1:
        return [hint]
    placeholder = ((0, 0),) * (terms[0][1] + 1)
    cuts: list[tuple[int, int]] = []
    _sum_cuts(op, bound, terms, placeholder, cuts)
    return [("cut", dim, cut) for dim, cut in cuts]


def extract_split_hints(
    expr: BoolExpr, index_of: dict[str, int], *, legacy: bool = False
) -> tuple[SplitHint, ...]:
    """Lower a formula's atoms into box-independent cut generators.

    The hint order matches :func:`walk_atoms` so the replay breaks width
    ties exactly like a direct walk would.  ``legacy=True`` disables the
    sum-of-terms analysis and reproduces the pre-kernel heuristic
    (single-variable ``var_bound`` cuts only) — kept so benchmarks can
    measure against a faithful baseline.
    """
    hints: list[SplitHint] = []
    for atom in walk_atoms(expr):
        if isinstance(atom, Cmp):
            if not legacy:
                sum_hint = _parse_sum_atom(atom, index_of)
                if sum_hint is not None:
                    hints.extend(_simplify_sum_hint(sum_hint))
                    continue
            bound = var_bound(atom)
            if bound is not None:
                name, op, c = bound
                hints.append(("cmp", index_of[name], op, c))
        elif isinstance(atom, InSet) and isinstance(atom.arg, Var):
            hints.append(
                ("inset", index_of[atom.arg.name], tuple(sorted(atom.values)))
            )
    return tuple(hints)


def choose_split_hinted(
    hints: tuple[SplitHint, ...],
    live: frozenset[str],
    box: Box,
    names: Sequence[str],
) -> tuple[int, int]:
    """Replay precompiled hints on a box; fall back to widest-dim bisection."""
    bounds = box.bounds
    best_width = 0
    best_dim = -1
    best_cut = 0
    candidates: list[tuple[int, int]] = []
    for hint in hints:
        kind = hint[0]
        if kind == "cut":
            _, dim, cut = hint
            lo, hi = bounds[dim]
            if lo <= cut < hi:
                width = hi - lo + 1
                if width > best_width:
                    best_width, best_dim, best_cut = width, dim, cut
            continue
        if kind == "sum":
            candidates.clear()
            _sum_cuts(hint[1], hint[2], hint[3], bounds, candidates)
            for dim, cut in candidates:
                lo, hi = bounds[dim]
                if lo <= cut < hi:
                    width = hi - lo + 1
                    if width > best_width:
                        best_width, best_dim, best_cut = width, dim, cut
            continue
        if kind == "cmp":
            _, dim, op, c = hint
            lo, hi = bounds[dim]
            if op is CmpOp.LE or op is CmpOp.GT:
                cut = c
            elif op is CmpOp.LT or op is CmpOp.GE:
                cut = c - 1
            else:
                cut = _cmp_cut(op, c, hi)
            if lo <= cut < hi:
                width = hi - lo + 1
                if width > best_width:
                    best_width, best_dim, best_cut = width, dim, cut
            continue
        # inset
        _, dim, members = hint
        lo, hi = bounds[dim]
        cut = _inset_cut([v for v in members if lo <= v <= hi], lo, hi)
        if cut is not None:
            width = hi - lo + 1
            if width > best_width:
                best_width, best_dim, best_cut = width, dim, cut
    if best_dim >= 0:
        return best_dim, best_cut
    return _fallback_split(live, box, names)


def choose_split(
    phi: BoolExpr, box: Box, names: Sequence[str], *, legacy: bool = False
) -> tuple[int, int]:
    """Pick a split ``(dim, cut)``: low half ``[lo, cut]``, high ``[cut+1, hi]``.

    Boundary-guided (see the module docstring); equals hint extraction
    followed by replay, which is exactly how the kernel engine runs it.
    """
    index_of = {name: dim for dim, name in enumerate(names)}
    return choose_split_hinted(
        extract_split_hints(phi, index_of, legacy=legacy), free_vars(phi), box, names
    )


def _fallback_split(
    live: frozenset[str], box: Box, names: Sequence[str]
) -> tuple[int, int]:
    """Midpoint of the widest dimension still free in the formula."""
    best_dim = -1
    best_width = 0
    for dim, (name, (lo, hi)) in enumerate(zip(names, box.bounds)):
        width = hi - lo + 1
        if name in live and width > best_width:
            best_dim, best_width = dim, width
    if best_dim < 0 or best_width < 2:
        raise AssertionError(
            "specialized UNKNOWN formula with no splittable variable; "
            "abstract evaluation should decide single-point boxes"
        )
    lo, hi = box.bounds[best_dim]
    return best_dim, (lo + hi) // 2


def split_at(box: Box, dim: int, cut: int) -> tuple[Box, Box]:
    """Split ``box`` into ``[lo, cut]`` and ``[cut+1, hi]`` along ``dim``.

    The caller guarantees ``lo <= cut < hi`` (every split chooser does),
    so both halves are non-empty by construction and validation is skipped.
    """
    bounds = box.bounds
    lo, hi = bounds[dim]
    prefix, suffix = bounds[:dim], bounds[dim + 1 :]
    return (
        Box.trusted(prefix + ((lo, cut),) + suffix),
        Box.trusted(prefix + ((cut + 1, hi),) + suffix),
    )
