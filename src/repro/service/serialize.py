"""JSON codecs for compiled declassification artifacts.

The synthesis cache persists :class:`~repro.core.plugin.CompiledQuery`
values across processes (a "warm start"), so everything the compile step
produces — synthesized domains, proof certificates, timing metadata — needs
an exact JSON round trip.  Query ASTs and secret declarations reuse the
codecs of :mod:`repro.lang.canonical`; this module adds the geometric and
proof-carrying layers on top.

Serialized certificates record proofs that were *checked in some earlier
process*; loading one does not re-run the checker.  A warm-started artifact
is exactly as trustworthy as the file it came from, which is why
:meth:`~repro.service.cache.SynthesisCache.load` is explicit rather than
ambient.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.monad.policy import QuantitativePolicy
    from repro.service.api import DowngradeResult

from repro.core.plugin import CompiledQuery, CompileOptions, ModeReport
from repro.core.qinfo import DomainPair, QInfo
from repro.core.synth import SynthOptions
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.canonical import (
    expr_from_json,
    expr_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.lang.secrets import SecretSpec
from repro.lang.validate import validate_query
from repro.refine.checker import Certificate, CheckOutcome
from repro.solver.boxes import Box

__all__ = [
    "canonical_json",
    "payload_digest",
    "box_to_json",
    "box_from_json",
    "domain_to_json",
    "domain_from_json",
    "options_to_json",
    "options_from_json",
    "policy_to_json",
    "policy_from_json",
    "downgrade_result_to_json",
    "downgrade_result_from_json",
    "compiled_query_to_json",
    "compiled_query_from_json",
]


# ---------------------------------------------------------------------------
# Canonical encodings and digests
# ---------------------------------------------------------------------------


def canonical_json(payload: Any) -> str:
    """One canonical JSON encoding of a payload (sorted keys, no spaces).

    Everything that must be byte-stable across processes and across time
    — journal entries, outcome digests, replay conformance — goes
    through this one encoder, so "the same payload" always means "the
    same bytes".  Inputs must already be JSON-safe (the codecs in this
    module produce exactly that).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """The sha256 hex digest of a payload's canonical JSON encoding.

    This is the unit the request journal records per executed request
    and the unit :class:`~repro.server.replay.ReplaySession` compares:
    two outcomes are "bit-identical" iff their digests match.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Compile options
# ---------------------------------------------------------------------------


def options_to_json(options: CompileOptions) -> dict[str, Any]:
    """Encode compile options (exact round trip).

    Every field of :class:`~repro.core.plugin.CompileOptions` and its
    nested :class:`~repro.core.synth.SynthOptions` is written out — the
    sharded worker pool ships compile jobs across process boundaries as
    JSON, so a field silently dropped here would make remote compiles
    diverge from local ones (and from the cache key, which hashes the
    same knobs).
    """
    synth = options.synth
    return {
        "domain": options.domain,
        "k": options.k,
        "modes": list(options.modes),
        "verify": options.verify,
        "synth": {
            "time_budget": synth.time_budget,
            "seed_pops": synth.seed_pops,
            "growth": synth.growth,
            "use_kernels": synth.use_kernels,
            "vector_threshold": synth.vector_threshold,
            "fused_probes": synth.fused_probes,
            "incremental_seed": synth.incremental_seed,
            "legacy_splits": synth.legacy_splits,
        },
    }


def options_from_json(data: dict[str, Any]) -> CompileOptions:
    """Decode compile options encoded by :func:`options_to_json`."""
    synth = data["synth"]
    time_budget = synth["time_budget"]
    vector_threshold = synth["vector_threshold"]
    return CompileOptions(
        domain=data["domain"],
        k=int(data["k"]),
        modes=tuple(data["modes"]),
        verify=bool(data["verify"]),
        synth=SynthOptions(
            time_budget=None if time_budget is None else float(time_budget),
            seed_pops=int(synth["seed_pops"]),
            growth=synth["growth"],
            use_kernels=bool(synth["use_kernels"]),
            vector_threshold=(
                None if vector_threshold is None else int(vector_threshold)
            ),
            fused_probes=bool(synth["fused_probes"]),
            incremental_seed=bool(synth["incremental_seed"]),
            legacy_splits=bool(synth["legacy_splits"]),
        ),
    )


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


def policy_to_json(policy: "QuantitativePolicy") -> dict[str, Any]:
    """Encode a combinator-built policy for a process boundary.

    Only policies carrying a structural ``encoding`` (everything built
    from :func:`~repro.monad.policy.size_above`,
    :func:`~repro.monad.policy.size_at_least`,
    :func:`~repro.monad.policy.all_of`,
    :func:`~repro.monad.policy.any_of`) can cross processes — a policy
    wrapping an opaque lambda raises ``ValueError`` here rather than
    silently enforcing something different on the far side.
    """
    if policy.encoding is None:
        raise ValueError(
            f"policy {policy.name!r} has no structural encoding and cannot "
            "cross a process boundary; build it from the repro.monad.policy "
            "combinators"
        )
    return policy.encoding


def policy_from_json(data: dict[str, Any]) -> "QuantitativePolicy":
    """Decode a policy encoded by :func:`policy_to_json`."""
    from repro.monad.policy import all_of, any_of, size_above, size_at_least

    kind = data["kind"]
    if kind == "size_above":
        return size_above(int(data["threshold"]))
    if kind == "size_at_least":
        return size_at_least(int(data["threshold"]))
    if kind == "all_of":
        return all_of(*(policy_from_json(part) for part in data["parts"]))
    if kind == "any_of":
        return any_of(*(policy_from_json(part) for part in data["parts"]))
    raise ValueError(f"unknown policy kind {kind!r}")


# ---------------------------------------------------------------------------
# Downgrade results (the serving-job codec, next to the compile codec)
# ---------------------------------------------------------------------------


def downgrade_result_to_json(result: "DowngradeResult") -> dict[str, Any]:
    """Encode one serving outcome for the shard→gateway boundary.

    The sharded serving tier executes downgrade batches inside worker
    processes (:func:`repro.server.workers.serve_payload`); results come
    back through this codec, exactly like compile artifacts come back
    through :func:`compiled_query_to_json`.
    """
    return {
        "session_id": result.session_id,
        "query_name": result.query_name,
        "authorized": result.authorized,
        "response": result.response,
        "reason": result.reason,
        "knowledge_size": result.knowledge_size,
    }


def downgrade_result_from_json(data: dict[str, Any]) -> "DowngradeResult":
    """Decode a result encoded by :func:`downgrade_result_to_json`."""
    from repro.service.api import DowngradeResult

    response = data["response"]
    knowledge_size = data["knowledge_size"]
    return DowngradeResult(
        session_id=data["session_id"],
        query_name=data["query_name"],
        authorized=bool(data["authorized"]),
        response=None if response is None else bool(response),
        reason=data["reason"],
        knowledge_size=None if knowledge_size is None else int(knowledge_size),
    )


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


def box_to_json(box: Box) -> list[list[int]]:
    """Encode a box as a list of ``[lo, hi]`` pairs."""
    return [[lo, hi] for lo, hi in box.bounds]


def box_from_json(data: list[list[int]]) -> Box:
    """Decode a box encoded by :func:`box_to_json`."""
    return Box(tuple((int(lo), int(hi)) for lo, hi in data))


def domain_to_json(domain: AbstractDomain) -> dict[str, Any]:
    """Encode an interval or powerset domain (the spec is stored once,
    at the artifact level, not per domain)."""
    if isinstance(domain, IntervalDomain):
        return {
            "kind": "interval",
            "box": None if domain.box is None else box_to_json(domain.box),
        }
    if isinstance(domain, PowersetDomain):
        return {
            "kind": "powerset",
            "include": [box_to_json(box) for box in domain.include],
            "exclude": [box_to_json(box) for box in domain.exclude],
        }
    raise TypeError(f"unsupported domain type {type(domain)}")


def domain_from_json(data: dict[str, Any], spec: SecretSpec) -> AbstractDomain:
    """Decode a domain encoded by :func:`domain_to_json`."""
    kind = data["kind"]
    if kind == "interval":
        box = data["box"]
        return IntervalDomain(spec, None if box is None else box_from_json(box))
    if kind == "powerset":
        return PowersetDomain(
            spec,
            tuple(box_from_json(box) for box in data["include"]),
            tuple(box_from_json(box) for box in data["exclude"]),
        )
    raise ValueError(f"unknown domain kind {kind!r}")


def _pair_to_json(pair: DomainPair | None) -> list[dict[str, Any]] | None:
    if pair is None:
        return None
    return [domain_to_json(pair[0]), domain_to_json(pair[1])]


def _pair_from_json(
    data: list[dict[str, Any]] | None, spec: SecretSpec
) -> DomainPair | None:
    if data is None:
        return None
    return (domain_from_json(data[0], spec), domain_from_json(data[1], spec))


# ---------------------------------------------------------------------------
# Proof certificates and reports
# ---------------------------------------------------------------------------


def _certificate_to_json(cert: Certificate) -> dict[str, Any]:
    return {
        "obligation": cert.obligation,
        "formula": cert.formula,
        "holds": cert.holds,
        "search_nodes": cert.search_nodes,
        "elapsed": cert.elapsed,
        "vector_boxes": cert.vector_boxes,
        "probe_fronts": cert.probe_fronts,
        "front_boxes": cert.front_boxes,
    }


def _certificate_from_json(data: dict[str, Any]) -> Certificate:
    return Certificate(
        obligation=data["obligation"],
        formula=data["formula"],
        holds=bool(data["holds"]),
        search_nodes=int(data["search_nodes"]),
        elapsed=float(data["elapsed"]),
        vector_boxes=int(data.get("vector_boxes", 0)),
        probe_fronts=int(data.get("probe_fronts", 0)),
        front_boxes=int(data.get("front_boxes", 0)),
    )


def _outcome_to_json(outcome: CheckOutcome | None) -> list[dict[str, Any]] | None:
    if outcome is None:
        return None
    return [_certificate_to_json(cert) for cert in outcome.certificates]


def _outcome_from_json(data: list[dict[str, Any]] | None) -> CheckOutcome | None:
    if data is None:
        return None
    return CheckOutcome(tuple(_certificate_from_json(cert) for cert in data))


def _report_to_json(report: ModeReport) -> dict[str, Any]:
    return {
        "mode": report.mode,
        "synth_time": report.synth_time,
        "verify_time": report.verify_time,
        "timed_out": report.timed_out,
        "true_outcome": _outcome_to_json(report.true_outcome),
        "false_outcome": _outcome_to_json(report.false_outcome),
        "solver_nodes": report.solver_nodes,
        "solver_splits": report.solver_splits,
        "vector_boxes": report.vector_boxes,
        "fused_rounds": report.fused_rounds,
        "probe_fronts": report.probe_fronts,
        "front_boxes": report.front_boxes,
    }


def _report_from_json(data: dict[str, Any]) -> ModeReport:
    return ModeReport(
        mode=data["mode"],
        synth_time=float(data["synth_time"]),
        verify_time=float(data["verify_time"]),
        timed_out=bool(data["timed_out"]),
        true_outcome=_outcome_from_json(data["true_outcome"]),
        false_outcome=_outcome_from_json(data["false_outcome"]),
        solver_nodes=int(data.get("solver_nodes", 0)),
        solver_splits=int(data.get("solver_splits", 0)),
        vector_boxes=int(data.get("vector_boxes", 0)),
        fused_rounds=int(data.get("fused_rounds", 0)),
        probe_fronts=int(data.get("probe_fronts", 0)),
        front_boxes=int(data.get("front_boxes", 0)),
    )


# ---------------------------------------------------------------------------
# Compiled queries
# ---------------------------------------------------------------------------


def compiled_query_to_json(compiled: CompiledQuery) -> dict[str, Any]:
    """Encode a compiled query artifact for persistence."""
    qinfo = compiled.qinfo
    return {
        "name": qinfo.name,
        "query": expr_to_json(qinfo.query),
        "secret": spec_to_json(qinfo.secret),
        "under_indset": _pair_to_json(qinfo.under_indset),
        "over_indset": _pair_to_json(qinfo.over_indset),
        "reports": {mode: _report_to_json(r) for mode, r in compiled.reports.items()},
    }


def compiled_query_from_json(data: dict[str, Any]) -> CompiledQuery:
    """Decode an artifact encoded by :func:`compiled_query_to_json`.

    The validation report is recomputed (validation is cheap and purely
    syntactic); domains, certificates, and timings are restored verbatim.
    """
    secret = spec_from_json(data["secret"])
    query = expr_from_json(data["query"])
    qinfo = QInfo(
        name=data["name"],
        query=query,
        secret=secret,
        under_indset=_pair_from_json(data["under_indset"], secret),
        over_indset=_pair_from_json(data["over_indset"], secret),
    )
    return CompiledQuery(
        qinfo=qinfo,
        validation=validate_query(query, secret),
        reports={mode: _report_from_json(r) for mode, r in data["reports"].items()},
    )
