"""Direct tests for the vectorized counting fast path."""

import pytest

from repro.lang.ast import BoolLit, IntIte, Scale, var
from repro.lang.parser import parse_bool
from repro.solver.boxes import Box
from repro.solver.vectoreval import AVAILABLE, count_box_vectorized

NAMES = ("x", "y")
BOX = Box.make((-5, 10), (0, 7))

pytestmark = pytest.mark.skipif(not AVAILABLE, reason="NumPy not installed")


def _brute(formula):
    from repro.lang.eval import eval_bool

    return sum(
        1 for p in BOX.iter_points() if eval_bool(formula, dict(zip(NAMES, p)))
    )


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "source",
        [
            "x + y <= 3",
            "abs(x - 2) + abs(y - 3) <= 4",
            "x in {0, 3, 9} and y >= 2",
            "not (x <= 0 or y >= 5)",
            "x == y",
            "x != 2",
            "2 * x - y > 0",
            "min(x, y) >= 1 and max(x, y) <= 6",
            "x <= 1 => y <= 2",
            "x <= 1 <=> y <= 2",
        ],
    )
    def test_matches_brute_force(self, source):
        formula = parse_bool(source)
        assert count_box_vectorized(formula, BOX, NAMES) == _brute(formula)

    def test_constant_true(self):
        assert count_box_vectorized(BoolLit(True), BOX, NAMES) == BOX.volume()

    def test_constant_false(self):
        assert count_box_vectorized(BoolLit(False), BOX, NAMES) == 0

    def test_single_variable_broadcast(self):
        # A 1-var formula must broadcast correctly over the other axis.
        formula = var("x") <= 0
        assert count_box_vectorized(formula, BOX, NAMES) == 6 * 8

    def test_ite_expression(self):
        formula = IntIte(var("x") < 0, -var("x"), var("x")) <= 2
        assert count_box_vectorized(formula, BOX, NAMES) == _brute(formula)

    def test_scale_negative_coefficient(self):
        formula = Scale(-2, var("x")) >= var("y")
        assert count_box_vectorized(formula, BOX, NAMES) == _brute(formula)

    def test_single_dimension_box(self):
        box = Box.make((0, 99))
        formula = var("x").in_set({5, 50, 99})
        assert count_box_vectorized(formula, box, ("x",)) == 3
