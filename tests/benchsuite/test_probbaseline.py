"""Tests for the HC4 Prob-style baseline: soundness and convergence."""

from hypothesis import given, settings

from repro.benchsuite.probbaseline import ProbLiteAnalyzer, hc4_posterior
from repro.lang.ast import var
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box
from tests.strategies import bool_exprs

SPEC = SecretSpec.declare("S", x=(-8, 12), y=(0, 15))
SPACE = Box(SPEC.bounds())
NAMES = SPEC.field_names


def _consistent(query, response):
    return {
        p
        for p in SPACE.iter_points()
        if eval_bool(query, dict(zip(NAMES, p))) == response
    }


class TestSoundness:
    @given(bool_exprs(NAMES))
    @settings(max_examples=100, deadline=None)
    def test_posterior_overapproximates_true_response(self, query):
        result = hc4_posterior(query, SPEC, SPACE, True)
        consistent = _consistent(query, True)
        if result.box is None:
            assert not consistent
        else:
            assert consistent <= set(result.box.iter_points())

    @given(bool_exprs(NAMES))
    @settings(max_examples=100, deadline=None)
    def test_posterior_overapproximates_false_response(self, query):
        result = hc4_posterior(query, SPEC, SPACE, False)
        consistent = _consistent(query, False)
        if result.box is None:
            assert not consistent
        else:
            assert consistent <= set(result.box.iter_points())

    @given(bool_exprs(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_terminates_within_iteration_cap(self, query):
        result = hc4_posterior(query, SPEC, SPACE, True, max_iterations=20)
        assert result.iterations <= 20
        assert result.elapsed >= 0


class TestPropagationPrecision:
    def test_conjunction_narrows_both_variables(self):
        query = (var("x") >= 3) & (var("y") <= 4)
        result = hc4_posterior(query, SPEC, SPACE, True)
        assert result.box == Box.make((3, 12), (0, 4))

    def test_infeasible_returns_none(self):
        query = var("x").eq(99)
        result = hc4_posterior(query, SPEC, SPACE, True)
        assert result.box is None
        assert result.size() == 0

    def test_equality_pins_variable(self):
        result = hc4_posterior(var("x").eq(5), SPEC, SPACE, True)
        assert result.box.bounds[0] == (5, 5)

    def test_disjunction_joins_branches(self):
        query = (var("x") <= -5) | (var("x") >= 10)
        result = hc4_posterior(query, SPEC, SPACE, True)
        # The hull of the two branches: the join-point imprecision.
        assert result.box.bounds[0] == (-8, 12)

    def test_abs_constraint_narrows(self):
        query = abs(var("x")) <= 2
        result = hc4_posterior(query, SPEC, SPACE, True)
        assert result.box.bounds[0] == (-2, 2)

    def test_in_set_narrows_to_member_hull(self):
        query = var("x").in_set({0, 1, 7})
        result = hc4_posterior(query, SPEC, SPACE, True)
        assert result.box.bounds[0] == (0, 7)


class TestAnalyzer:
    def test_tracks_knowledge_across_queries(self):
        analyzer = ProbLiteAnalyzer(SPEC)
        analyzer.observe(var("x") >= 0, True)
        analyzer.observe(var("x") <= 5, True)
        assert analyzer.knowledge.bounds[0] == (0, 5)
        assert analyzer.queries_run == 2
        assert analyzer.analysis_time > 0

    def test_infeasible_observation_keeps_previous_knowledge(self):
        analyzer = ProbLiteAnalyzer(SPEC)
        analyzer.observe(var("x") >= 0, True)
        before = analyzer.knowledge
        result = analyzer.observe(var("x") <= -1, True)
        assert result is None
        assert analyzer.knowledge == before
