"""Lexer for the concrete query syntax.

The surface language is the one used throughout the paper's prose::

    abs(x - 200) + abs(y - 200) <= 100
    gender == 1 and status in {2} and 1980 <= byear and byear <= 1983

Tokens carry source offsets so parse errors point at the offending column.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "and",
        "or",
        "not",
        "in",
        "true",
        "false",
        "if",
        "then",
        "else",
        "abs",
        "min",
        "max",
    }
)

#: Longest-match-first token table.
_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"#[^\n]*"),
    ("INT", r"\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("IFF", r"<=>"),
    ("IMPLIES", r"=>"),
    ("LE", r"<="),
    ("GE", r">="),
    ("EQ", r"=="),
    ("NE", r"!="),
    ("LT", r"<"),
    ("GT", r">"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("COMMA", r","),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class LexError(Exception):
    """Raised on input the lexer cannot tokenize."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} at offset {position}")
        self.position = position


@dataclass(frozen=True)
class Token:
    """A lexed token: kind, matched text, and offset into the source."""

    kind: str
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; appends a final EOF token."""
    tokens: list[Token] = []
    position = 0
    length = len(source)
    while position < length:
        match = _MASTER.match(source, position)
        if match is None:
            raise LexError(f"unexpected character {source[position]!r}", position)
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "IDENT" and text in KEYWORDS:
            kind = text.upper()
        if kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens


def token_kinds(source: str) -> Iterator[str]:
    """Convenience: the kinds of all tokens (testing helper)."""
    return (token.kind for token in tokenize(source))
