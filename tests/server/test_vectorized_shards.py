"""Shard-level parity: vectorized serving vs the scalar reference.

A serving shard runs ledger admission, the fleet downgrade, and commits
in one round; the SoA warm path must leave every observable — request
results, budget refusals, exported ledger deltas, knowledge sizes —
exactly where the scalar loop leaves them.
"""

import pytest

from repro.core.plugin import CompileOptions, compile_query
from repro.lang.canonical import spec_to_json
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server.workers import _ServingShard
from repro.service.serialize import compiled_query_to_json, policy_to_json
from repro.solver.vectoreval import AVAILABLE

pytestmark = pytest.mark.skipif(not AVAILABLE, reason="NumPy not installed")

SPEC = SecretSpec.declare("ShardFleet", x=(0, 31), y=(0, 31))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
QUERIES = {
    "near": "abs(x - 10) + abs(y - 10) <= 8",
    "west": "x <= 12",
    "tight": "x <= 1 and y <= 1",
}
POINTS = [(0, 0), (5, 9), (10, 10), (31, 31), (12, 1), (1, 1), (20, 5), (0, 31)]


def _shard(floor):
    data = {
        "policy": policy_to_json(size_above(16)),
        "mode": "under",
        "check_both": True,
        "floor": None if floor is None else policy_to_json(size_above(floor)),
    }
    return _ServingShard(data)


def _load(shard, vectorized):
    shard.manager.vectorized = vectorized
    for name, source in QUERIES.items():
        compiled = compile_query(name, source, SPEC, OPTIONS)
        shard.attach_query({"name": name, "artifact": compiled_query_to_json(compiled)})
    for i, point in enumerate(POINTS):
        shard.open_session(
            {
                "session_id": f"s{i}",
                "user_id": f"user{i % 5}",  # some users own two sessions
                "spec": spec_to_json(SPEC),
                "value": list(point),
            }
        )
    return shard


@pytest.mark.parametrize("floor", [None, 4, 4000])
def test_serve_batch_parity(floor):
    scalar = _load(_shard(floor), vectorized=False)
    vectorized = _load(_shard(floor), vectorized=True)
    ids = [f"s{i}" for i in range(len(POINTS))] + ["ghost"]
    for tick, name in enumerate(["near", "west", "near", "tight", "west"]):
        want = scalar.serve_batch(name, ids)
        got = vectorized.serve_batch(name, ids)
        assert got == want, (tick, name)
    for sid in list(scalar.manager.sessions):
        assert (
            scalar.manager.sessions[sid].knowledge
            == vectorized.manager.sessions[sid].knowledge
        )
        assert (
            scalar.manager.sessions[sid].history
            == vectorized.manager.sessions[sid].history
        )
    if floor is not None:
        for uid in scalar.ledger.users():
            assert (
                scalar.ledger.account(uid).refusals
                == vectorized.ledger.account(uid).refusals
            )


def test_vectorized_is_the_shard_default():
    shard = _shard(None)
    assert shard.manager.vectorized is True
