"""Compiled expression kernels: lower each query AST once, run it many times.

Branch-and-bound calls the abstract evaluator thousands of times per
decision, and the tree-walking interpreters in :mod:`repro.solver.abseval`
re-pattern-match the same AST nodes on every sub-box.  This module lowers
an expression *once* into flat, allocation-light closures — one Python
function per node, with dispatch, variable lookup and interval plumbing
resolved at compile time:

* **specialization kernels** — ``bounds -> (truth, residual)`` closures
  mirroring :func:`repro.solver.abseval.specialize` exactly (same truth
  values, structurally identical residual formulas), but taking the box
  bounds as a positional tuple (no per-node environment dict), composing
  child closures instead of re-matching node types, and producing
  *residual kernels* directly — no AST is allocated or re-lowered on the
  search's hot path;
* **concrete kernels** — ``values -> bool/int`` closures mirroring
  :mod:`repro.lang.eval` for the run-time ``QInfo.run`` hot path;
* **grid kernels** — NumPy closures mirroring
  :mod:`repro.solver.vectoreval` for vectorized small-box finishing.

A :class:`KernelSpace` is one lowering context: it fixes the variable
order (so boxes *are* environments) and **hash-conses** every kernel by a
shallow structural key — a node's type, scalar fields, and the identities
of its child kernels.  Distinct boxes routinely shrink a formula to
structurally identical residuals; hash-consing collapses them onto one
kernel, so compilation, free-variable sets, split hints, and the
``(kernel, box)`` specialization memo are all shared across the
optimizer's overlapping probes.  Keys never hash whole subtrees: children
are interned bottom-up, so each lookup is O(1).

Everything here is exactness-preserving: the kernels compute the same
answers, the same residuals, and drive the same split decisions as the
interpreters (enforced by property and differential tests); only the
constant factors change.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.ternary import FALSE, TRUE, UNKNOWN, Ternary
from repro.solver import vectoreval
from repro.solver.abseval import _inset_range
from repro.solver.boxes import Box
from repro.solver.interval import Range
from repro.solver.split import (
    SplitHint,
    choose_split_hinted,
    extract_split_hints,
)

__all__ = ["KernelSpace", "BoolKernel", "IntKernel", "concrete_predicate"]

#: Box bounds in variable order — the kernel's whole "environment".
Bounds = tuple[tuple[int, int], ...]

_CMP_CONCRETE = {
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}


def _cmp_le(alo, ahi, blo, bhi):
    if ahi <= blo:
        return TRUE
    if alo > bhi:
        return FALSE
    return UNKNOWN


def _cmp_lt(alo, ahi, blo, bhi):
    if ahi < blo:
        return TRUE
    if alo >= bhi:
        return FALSE
    return UNKNOWN


def _cmp_ge(alo, ahi, blo, bhi):
    return _cmp_le(blo, bhi, alo, ahi)


def _cmp_gt(alo, ahi, blo, bhi):
    return _cmp_lt(blo, bhi, alo, ahi)


def _cmp_eq(alo, ahi, blo, bhi):
    if alo == ahi == blo == bhi:
        return TRUE
    if ahi < blo or bhi < alo:
        return FALSE
    return UNKNOWN


def _cmp_ne(alo, ahi, blo, bhi):
    truth = _cmp_eq(alo, ahi, blo, bhi)
    if truth is TRUE:
        return FALSE
    if truth is FALSE:
        return TRUE
    return UNKNOWN


#: Per-op abstract deciders over unpacked ranges (same truth values as
#: ``abseval._cmp_ranges``, selected once at compile time).
_CMP_ABSTRACT = {
    CmpOp.LE: _cmp_le,
    CmpOp.LT: _cmp_lt,
    CmpOp.GE: _cmp_ge,
    CmpOp.GT: _cmp_gt,
    CmpOp.EQ: _cmp_eq,
    CmpOp.NE: _cmp_ne,
}


class IntKernel:
    """A hash-consed integer expression kernel.

    ``spec(bounds)`` returns the expression's exact range on the box plus
    its residual kernel (itself when nothing simplified) — the compiled
    equivalent of ``abseval._spec_int``.
    """

    __slots__ = ("expr", "free", "spec")

    def __init__(self, expr: IntExpr, free: frozenset[str]):
        self.expr = expr
        self.free = free
        self.spec: Callable[[Bounds], tuple[Range, "IntKernel"]] | None = None


class BoolKernel:
    """A hash-consed boolean formula kernel, bound to its space."""

    __slots__ = ("space", "expr", "free", "spec", "_memo", "_hints", "_hints_fn")

    #: Per-kernel specialization memo bound; small enough that pathological
    #: kernels cannot hoard memory, large enough for the optimizers' probes.
    MEMO_CAP = 1024

    def __init__(self, space: "KernelSpace", expr: BoolExpr, free: frozenset[str]):
        self.space = space
        self.expr = expr
        self.free = free
        self.spec: Callable[[Bounds], tuple[Ternary, "BoolKernel"]] | None = None
        self._memo: dict[Bounds, tuple[Ternary, "BoolKernel"]] = {}
        self._hints: tuple[SplitHint, ...] | None = None
        #: Set by the constructor: how to build this kernel's hints — atoms
        #: parse themselves, composites concatenate their children's cached
        #: hints (in ``walk_atoms`` stack order), so residual kernels get
        #: split hints in O(children) instead of re-walking the formula.
        self._hints_fn: Callable[[], tuple[SplitHint, ...]] | None = None

    def specialize(self, bounds: Bounds) -> tuple[Ternary, "BoolKernel"]:
        """Abstract truth over the box plus the residual kernel, memoized.

        Hash-consing makes the per-kernel memo meaningful: the same
        sub-problem reached through different probes lands on the same
        entry (the optimizer's overlapping doubling and bisection probes).
        """
        memo = self._memo
        hit = memo.get(bounds)
        if hit is not None:
            self.space.spec_hits += 1
            return hit
        result = self.spec(bounds)
        if len(memo) >= self.MEMO_CAP:
            memo.clear()
        memo[bounds] = result
        return result

    @property
    def hints(self) -> tuple[SplitHint, ...]:
        """Precompiled split-cut candidates (built once per distinct kernel)."""
        hints = self._hints
        if hints is None:
            fn = self._hints_fn
            if fn is not None:
                hints = fn()
            else:
                hints = extract_split_hints(
                    self.expr, self.space.index, legacy=self.space.legacy_splits
                )
            self._hints = hints
        return hints

    def choose_split(self, box: Box) -> tuple[int, int]:
        """Same ``(dim, cut)`` the interpreter heuristic would pick."""
        return choose_split_hinted(self.hints, self.free, box, self.space.names)

    # -- vectorized small-box finishing ---------------------------------
    def _mask(self, box: Box):
        grids = vectoreval.make_grids(box)
        return self.space.grid_bool(self.expr)(grids)

    def grid_count(self, box: Box) -> int:
        """Exact model count on the box via the compiled grid kernel."""
        return vectoreval.mask_count(self._mask(box), box)

    def grid_all(self, box: Box) -> bool:
        """Whether every point of the box satisfies the formula."""
        return vectoreval.mask_all(self._mask(box), box)

    def grid_find(self, box: Box) -> tuple[int, ...] | None:
        """First satisfying point in grid (C) order, or ``None``."""
        return vectoreval.mask_find(self._mask(box), box)

    def grid_mask(self, box: Box):
        """The full boolean satisfaction mask over the box."""
        return vectoreval.mask_array(self._mask(box), box)

    def grid_all_stacked(self, boxes: Sequence[Box]) -> list[bool]:
        """Per-box ``forall`` over a stack of same-shaped boxes.

        One compiled-kernel evaluation for the whole stack — the kernel
        side of a fused probe-front flush (see
        :func:`repro.solver.decide.decide_forall_front`).
        """
        grids = vectoreval.make_stacked_grids(boxes)
        return vectoreval.stacked_mask_all(
            self.space.grid_bool(self.expr)(grids), boxes
        )


class KernelSpace:
    """One lowering context: a variable order plus hash-consed kernels.

    All kernels are created through the ``k_*`` constructors, which intern
    by shallow structural keys.  Interned kernels (and the AST nodes their
    ``expr`` attributes reference) live as long as the space, so the
    object identities embedded in keys and memo entries are stable.  The
    specialization memo and the AST-identity fast path are capped and
    dropped wholesale on overflow; the structural intern map is the
    persistent store.
    """

    ID_MAP_CAP = 1 << 16

    __slots__ = (
        "names",
        "index",
        "legacy_splits",
        "_interned",
        "_ast_bool",
        "_ast_int",
        "_concrete",
        "_grid",
        "spec_hits",
        "k_true",
        "k_false",
    )

    def __init__(self, names: Sequence[str], *, legacy_splits: bool = False):
        self.names = tuple(names)
        self.index = {name: dim for dim, name in enumerate(self.names)}
        self.legacy_splits = legacy_splits
        self._interned: dict[tuple, IntKernel | BoolKernel] = {}
        # AST-identity fast paths (id -> (expr, kernel)); the expr reference
        # pins the id against recycling.
        self._ast_bool: dict[int, tuple[BoolExpr, BoolKernel]] = {}
        self._ast_int: dict[int, tuple[IntExpr, IntKernel]] = {}
        self._concrete: dict[int, tuple[object, Callable]] = {}
        self._grid: dict[int, tuple[object, Callable]] = {}
        self.spec_hits = 0
        self.k_true = self._k_bool_lit(True)
        self.k_false = self._k_bool_lit(False)

    # ------------------------------------------------------------------
    # AST entry points
    # ------------------------------------------------------------------
    def lower(self, expr: BoolExpr) -> BoolKernel:
        """The (hash-consed) kernel of a boolean formula."""
        entry = self._ast_bool.get(id(expr))
        if entry is not None:
            return entry[1]
        match expr:
            case BoolLit(value):
                kernel = self.k_true if value else self.k_false
            case Cmp(op, left, right):
                kernel = self.k_cmp(op, self.lower_int(left), self.lower_int(right))
            case And(args):
                kids = tuple(self.lower(arg) for arg in args)
                kernel = kids[0] if len(kids) == 1 else self.k_and(kids)
            case Or(args):
                kids = tuple(self.lower(arg) for arg in args)
                kernel = kids[0] if len(kids) == 1 else self.k_or(kids)
            case Not(arg):
                kernel = self.k_not(self.lower(arg))
            case Implies(antecedent, consequent):
                # The interpreter lowers implication on every visit; the
                # kernel lowers it once and shares the Or kernel outright.
                kernel = self.k_or(
                    (self.k_not(self.lower(antecedent)), self.lower(consequent))
                )
            case Iff(left, right):
                kernel = self.k_iff(self.lower(left), self.lower(right))
            case InSet(arg, values):
                kernel = self.k_inset(self.lower_int(arg), values)
            case _:
                raise TypeError(f"not a boolean expression: {expr!r}")
        if len(self._ast_bool) >= self.ID_MAP_CAP:
            self._ast_bool.clear()
        self._ast_bool[id(expr)] = (expr, kernel)
        return kernel

    def lower_int(self, expr: IntExpr) -> IntKernel:
        """The (hash-consed) kernel of an integer expression."""
        entry = self._ast_int.get(id(expr))
        if entry is not None:
            return entry[1]
        match expr:
            case Lit(value):
                kernel = self.k_lit(value)
            case Var(name):
                kernel = self.k_var(name)
            case Add(left, right):
                kernel = self.k_add(self.lower_int(left), self.lower_int(right))
            case Sub(left, right):
                kernel = self.k_sub(self.lower_int(left), self.lower_int(right))
            case Neg(arg):
                kernel = self.k_neg(self.lower_int(arg))
            case Scale(coeff, arg):
                kernel = self.k_scale(coeff, self.lower_int(arg))
            case Abs(arg):
                kernel = self.k_abs(self.lower_int(arg))
            case Min(left, right):
                kernel = self.k_min(self.lower_int(left), self.lower_int(right))
            case Max(left, right):
                kernel = self.k_max(self.lower_int(left), self.lower_int(right))
            case IntIte(cond, then_branch, else_branch):
                kernel = self.k_ite(
                    self.lower(cond),
                    self.lower_int(then_branch),
                    self.lower_int(else_branch),
                )
            case _:
                raise TypeError(f"not an integer expression: {expr!r}")
        if len(self._ast_int) >= self.ID_MAP_CAP:
            self._ast_int.clear()
        self._ast_int[id(expr)] = (expr, kernel)
        return kernel

    # ------------------------------------------------------------------
    # Hash-consed kernel constructors
    # ------------------------------------------------------------------
    # Each constructor mirrors its abseval._spec_int/_spec_bool branch, so
    # kernel residuals are structurally identical to interpreter residuals.

    def k_lit(self, value: int) -> IntKernel:
        key = (Lit, value)
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Lit(value), frozenset())
            rng = (value, value)

            def spec(bounds, rng=rng, kernel=kernel):
                return rng, kernel

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_var(self, name: str) -> IntKernel:
        key = (Var, name)
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Var(name), frozenset((name,)))
            dim = self.index[name]

            def spec(bounds, dim=dim, kernel=kernel, k_lit=self.k_lit):
                rng = bounds[dim]
                if rng[0] == rng[1]:
                    return rng, k_lit(rng[0])
                return rng, kernel

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_add(self, ka: IntKernel, kb: IntKernel) -> IntKernel:
        key = (Add, id(ka), id(kb))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Add(ka.expr, kb.expr), ka.free | kb.free)
            fa, fb = ka.spec, kb.spec

            def spec(bounds, fa=fa, fb=fb, ka=ka, kb=kb, kernel=kernel, self=self):
                (alo, ahi), ra = fa(bounds)
                (blo, bhi), rb = fb(bounds)
                lo = alo + blo
                hi = ahi + bhi
                if lo == hi:
                    return (lo, hi), self.k_lit(lo)
                if ra is ka and rb is kb:
                    return (lo, hi), kernel
                return (lo, hi), self.k_add(ra, rb)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_sub(self, ka: IntKernel, kb: IntKernel) -> IntKernel:
        key = (Sub, id(ka), id(kb))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Sub(ka.expr, kb.expr), ka.free | kb.free)
            fa, fb = ka.spec, kb.spec

            def spec(bounds, fa=fa, fb=fb, ka=ka, kb=kb, kernel=kernel, self=self):
                (alo, ahi), ra = fa(bounds)
                (blo, bhi), rb = fb(bounds)
                lo = alo - bhi
                hi = ahi - blo
                if lo == hi:
                    return (lo, hi), self.k_lit(lo)
                if ra is ka and rb is kb:
                    return (lo, hi), kernel
                return (lo, hi), self.k_sub(ra, rb)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_neg(self, ka: IntKernel) -> IntKernel:
        key = (Neg, id(ka))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Neg(ka.expr), ka.free)
            fa = ka.spec

            def spec(bounds, fa=fa, ka=ka, kernel=kernel, self=self):
                (alo, ahi), ra = fa(bounds)
                if alo == ahi:
                    return (-alo, -alo), self.k_lit(-alo)
                return (-ahi, -alo), (kernel if ra is ka else self.k_neg(ra))

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_scale(self, coeff: int, ka: IntKernel) -> IntKernel:
        key = (Scale, coeff, id(ka))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Scale(coeff, ka.expr), ka.free)
            fa = ka.spec

            def spec(bounds, fa=fa, coeff=coeff, ka=ka, kernel=kernel, self=self):
                (alo, ahi), ra = fa(bounds)
                if coeff >= 0:
                    lo, hi = coeff * alo, coeff * ahi
                else:
                    lo, hi = coeff * ahi, coeff * alo
                if lo == hi:
                    return (lo, hi), self.k_lit(lo)
                return (lo, hi), (kernel if ra is ka else self.k_scale(coeff, ra))

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_abs(self, ka: IntKernel) -> IntKernel:
        key = (Abs, id(ka))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Abs(ka.expr), ka.free)
            fa = ka.spec

            def spec(bounds, fa=fa, ka=ka, kernel=kernel, self=self):
                (alo, ahi), ra = fa(bounds)
                if alo >= 0:
                    rng = (alo, ahi)
                elif ahi <= 0:
                    rng = (-ahi, -alo)
                else:
                    rng = (0, max(-alo, ahi))
                if rng[0] == rng[1]:
                    return rng, self.k_lit(rng[0])
                if alo >= 0:
                    return rng, ra  # abs is the identity here
                if ahi <= 0:
                    return rng, self.k_neg(ra)
                return rng, (kernel if ra is ka else self.k_abs(ra))

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_min(self, ka: IntKernel, kb: IntKernel) -> IntKernel:
        key = (Min, id(ka), id(kb))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Min(ka.expr, kb.expr), ka.free | kb.free)
            fa, fb = ka.spec, kb.spec

            def spec(bounds, fa=fa, fb=fb, ka=ka, kb=kb, kernel=kernel, self=self):
                ra_rng, ra = fa(bounds)
                rb_rng, rb = fb(bounds)
                if ra_rng[1] <= rb_rng[0]:
                    return ra_rng, ra
                if rb_rng[1] <= ra_rng[0]:
                    return rb_rng, rb
                rng = (min(ra_rng[0], rb_rng[0]), min(ra_rng[1], rb_rng[1]))
                if ra is ka and rb is kb:
                    return rng, kernel
                return rng, self.k_min(ra, rb)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_max(self, ka: IntKernel, kb: IntKernel) -> IntKernel:
        key = (Max, id(ka), id(kb))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(Max(ka.expr, kb.expr), ka.free | kb.free)
            fa, fb = ka.spec, kb.spec

            def spec(bounds, fa=fa, fb=fb, ka=ka, kb=kb, kernel=kernel, self=self):
                ra_rng, ra = fa(bounds)
                rb_rng, rb = fb(bounds)
                if ra_rng[0] >= rb_rng[1]:
                    return ra_rng, ra
                if rb_rng[0] >= ra_rng[1]:
                    return rb_rng, rb
                rng = (max(ra_rng[0], rb_rng[0]), max(ra_rng[1], rb_rng[1]))
                if ra is ka and rb is kb:
                    return rng, kernel
                return rng, self.k_max(ra, rb)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_ite(self, kc: BoolKernel, kt: IntKernel, ke: IntKernel) -> IntKernel:
        key = (IntIte, id(kc), id(kt), id(ke))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = IntKernel(
                IntIte(kc.expr, kt.expr, ke.expr), kc.free | kt.free | ke.free
            )
            fc, ft, fe = kc.spec, kt.spec, ke.spec

            def spec(
                bounds, fc=fc, ft=ft, fe=fe, kc=kc, kt=kt, ke=ke, kernel=kernel,
                self=self,
            ):
                truth, rc = fc(bounds)
                if truth is TRUE:
                    return ft(bounds)
                if truth is FALSE:
                    return fe(bounds)
                rt_rng, rt = ft(bounds)
                re_rng, re_ = fe(bounds)
                rng = (min(rt_rng[0], re_rng[0]), max(rt_rng[1], re_rng[1]))
                if rng[0] == rng[1]:
                    return rng, self.k_lit(rng[0])
                if rc is kc and rt is kt and re_ is ke:
                    return rng, kernel
                return rng, self.k_ite(rc, rt, re_)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def _k_bool_lit(self, value: bool) -> BoolKernel:
        key = (BoolLit, value)
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = BoolKernel(self, BoolLit(value), frozenset())
            truth = TRUE if value else FALSE

            def spec(bounds, truth=truth, kernel=kernel):
                return truth, kernel

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_cmp(self, op: CmpOp, ka: IntKernel, kb: IntKernel) -> BoolKernel:
        key = (Cmp, op, id(ka), id(kb))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = BoolKernel(self, Cmp(op, ka.expr, kb.expr), ka.free | kb.free)
            fa, fb = ka.spec, kb.spec
            decide = _CMP_ABSTRACT[op]

            def spec(
                bounds, fa=fa, fb=fb, decide=decide, op=op, ka=ka, kb=kb,
                kernel=kernel, self=self,
            ):
                (alo, ahi), ra = fa(bounds)
                (blo, bhi), rb = fb(bounds)
                truth = decide(alo, ahi, blo, bhi)
                if truth is TRUE:
                    return TRUE, self.k_true
                if truth is FALSE:
                    return FALSE, self.k_false
                if ra is ka and rb is kb:
                    return UNKNOWN, kernel
                return UNKNOWN, self.k_cmp(op, ra, rb)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    def k_and(self, kids: tuple[BoolKernel, ...]) -> BoolKernel:
        key = (And,) + tuple(id(k) for k in kids)
        kernel = self._interned.get(key)
        if kernel is None:
            free = frozenset().union(*(k.free for k in kids)) if kids else frozenset()
            kernel = BoolKernel(self, And(tuple(k.expr for k in kids)), free)
            fns = tuple(k.spec for k in kids)
            count = len(kids)

            def spec(bounds, fns=fns, kids=kids, count=count, kernel=kernel, self=self):
                kept: list[BoolKernel] = []
                unchanged = True
                for fn, kid in zip(fns, kids):
                    t, r = fn(bounds)
                    if t is FALSE:
                        return FALSE, self.k_false
                    if t is UNKNOWN:
                        kept.append(r)
                        unchanged = unchanged and r is kid
                    else:
                        unchanged = False
                if not kept:
                    return TRUE, self.k_true
                if unchanged and len(kept) == count:
                    return UNKNOWN, kernel
                return UNKNOWN, kept[0] if len(kept) == 1 else self.k_and(tuple(kept))

            kernel.spec = spec
            # walk_atoms pops a stack, so children contribute last-first.
            kernel._hints_fn = lambda kids=kids: tuple(
                hint for kid in reversed(kids) for hint in kid.hints
            )
            self._interned[key] = kernel
        return kernel

    def k_or(self, kids: tuple[BoolKernel, ...]) -> BoolKernel:
        key = (Or,) + tuple(id(k) for k in kids)
        kernel = self._interned.get(key)
        if kernel is None:
            free = frozenset().union(*(k.free for k in kids)) if kids else frozenset()
            kernel = BoolKernel(self, Or(tuple(k.expr for k in kids)), free)
            fns = tuple(k.spec for k in kids)
            count = len(kids)

            def spec(bounds, fns=fns, kids=kids, count=count, kernel=kernel, self=self):
                kept: list[BoolKernel] = []
                unchanged = True
                for fn, kid in zip(fns, kids):
                    t, r = fn(bounds)
                    if t is TRUE:
                        return TRUE, self.k_true
                    if t is UNKNOWN:
                        kept.append(r)
                        unchanged = unchanged and r is kid
                    else:
                        unchanged = False
                if not kept:
                    return FALSE, self.k_false
                if unchanged and len(kept) == count:
                    return UNKNOWN, kernel
                return UNKNOWN, kept[0] if len(kept) == 1 else self.k_or(tuple(kept))

            kernel.spec = spec
            kernel._hints_fn = lambda kids=kids: tuple(
                hint for kid in reversed(kids) for hint in kid.hints
            )
            self._interned[key] = kernel
        return kernel

    def k_not(self, ka: BoolKernel) -> BoolKernel:
        key = (Not, id(ka))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = BoolKernel(self, Not(ka.expr), ka.free)
            fa = ka.spec

            def spec(bounds, fa=fa, ka=ka, kernel=kernel, self=self):
                t, r = fa(bounds)
                if t is TRUE:
                    return FALSE, self.k_false
                if t is FALSE:
                    return TRUE, self.k_true
                return UNKNOWN, (kernel if r is ka else self.k_not(r))

            kernel.spec = spec
            kernel._hints_fn = lambda ka=ka: ka.hints
            self._interned[key] = kernel
        return kernel

    def k_iff(self, ka: BoolKernel, kb: BoolKernel) -> BoolKernel:
        key = (Iff, id(ka), id(kb))
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = BoolKernel(self, Iff(ka.expr, kb.expr), ka.free | kb.free)
            fa, fb = ka.spec, kb.spec

            def spec(bounds, fa=fa, fb=fb, self=self):
                ta, ra = fa(bounds)
                tb, rb = fb(bounds)
                if ta is not UNKNOWN and tb is not UNKNOWN:
                    return (TRUE, self.k_true) if ta is tb else (FALSE, self.k_false)
                if ta is not UNKNOWN:
                    return UNKNOWN, (rb if ta is TRUE else self.k_not(rb))
                if tb is not UNKNOWN:
                    return UNKNOWN, (ra if tb is TRUE else self.k_not(ra))
                return UNKNOWN, self.k_iff(ra, rb)

            kernel.spec = spec
            # walk_atoms pushes (left, right) and pops right first.
            kernel._hints_fn = lambda ka=ka, kb=kb: kb.hints + ka.hints
            self._interned[key] = kernel
        return kernel

    def k_inset(self, ka: IntKernel, values: frozenset[int]) -> BoolKernel:
        # frozenset caches its own hash, so the values set is cheap to key on.
        key = (InSet, id(ka), values)
        kernel = self._interned.get(key)
        if kernel is None:
            kernel = BoolKernel(self, InSet(ka.expr, values), ka.free)
            fa = ka.spec

            def spec(bounds, fa=fa, values=values, ka=ka, kernel=kernel, self=self):
                (alo, ahi), ra = fa(bounds)
                truth = _inset_range((alo, ahi), values)
                if truth is TRUE:
                    return TRUE, self.k_true
                if truth is FALSE:
                    return FALSE, self.k_false
                live = frozenset(v for v in values if alo <= v <= ahi)
                if ra is ka and live == values:
                    return UNKNOWN, kernel
                return UNKNOWN, self.k_inset(ra, live)

            kernel.spec = spec
            self._interned[key] = kernel
        return kernel

    # ------------------------------------------------------------------
    # Concrete kernels (positional-argument closures for the run path)
    # ------------------------------------------------------------------
    def concrete_bool(self, expr: BoolExpr) -> Callable[[tuple[int, ...]], bool]:
        """A ``values -> bool`` closure agreeing with ``eval_bool``."""
        cached = self._concrete.get(id(expr))
        if cached is None:
            cached = (expr, self._compile_concrete_bool(expr))
            self._concrete[id(expr)] = cached
        return cached[1]

    def concrete_int(self, expr: IntExpr) -> Callable[[tuple[int, ...]], int]:
        """A ``values -> int`` closure agreeing with ``eval_int``."""
        cached = self._concrete.get(id(expr))
        if cached is None:
            cached = (expr, self._compile_concrete_int(expr))
            self._concrete[id(expr)] = cached
        return cached[1]

    def _compile_concrete_int(self, expr: IntExpr) -> Callable:
        match expr:
            case Lit(value):
                return lambda values, value=value: value
            case Var(name):
                dim = self.index[name]
                return lambda values, dim=dim: values[dim]
            case Add(left, right):
                fa, fb = self.concrete_int(left), self.concrete_int(right)
                return lambda values, fa=fa, fb=fb: fa(values) + fb(values)
            case Sub(left, right):
                fa, fb = self.concrete_int(left), self.concrete_int(right)
                return lambda values, fa=fa, fb=fb: fa(values) - fb(values)
            case Neg(arg):
                fa = self.concrete_int(arg)
                return lambda values, fa=fa: -fa(values)
            case Scale(coeff, arg):
                fa = self.concrete_int(arg)
                return lambda values, fa=fa, coeff=coeff: coeff * fa(values)
            case Abs(arg):
                fa = self.concrete_int(arg)
                return lambda values, fa=fa: abs(fa(values))
            case Min(left, right):
                fa, fb = self.concrete_int(left), self.concrete_int(right)
                return lambda values, fa=fa, fb=fb: min(fa(values), fb(values))
            case Max(left, right):
                fa, fb = self.concrete_int(left), self.concrete_int(right)
                return lambda values, fa=fa, fb=fb: max(fa(values), fb(values))
            case IntIte(cond, then_branch, else_branch):
                fc = self.concrete_bool(cond)
                ft = self.concrete_int(then_branch)
                fe = self.concrete_int(else_branch)
                return lambda values, fc=fc, ft=ft, fe=fe: (
                    ft(values) if fc(values) else fe(values)
                )
            case _:
                raise TypeError(f"not an integer expression: {expr!r}")

    def _compile_concrete_bool(self, expr: BoolExpr) -> Callable:
        match expr:
            case BoolLit(value):
                return lambda values, value=value: value
            case Cmp(op, left, right):
                fa, fb = self.concrete_int(left), self.concrete_int(right)
                cmp = _CMP_CONCRETE[op]
                return lambda values, fa=fa, fb=fb, cmp=cmp: cmp(fa(values), fb(values))
            case And(args):
                fns = tuple(self.concrete_bool(arg) for arg in args)

                def run_and(values, fns=fns):
                    for fn in fns:
                        if not fn(values):
                            return False
                    return True

                return run_and
            case Or(args):
                fns = tuple(self.concrete_bool(arg) for arg in args)

                def run_or(values, fns=fns):
                    for fn in fns:
                        if fn(values):
                            return True
                    return False

                return run_or
            case Not(arg):
                fa = self.concrete_bool(arg)
                return lambda values, fa=fa: not fa(values)
            case Implies(antecedent, consequent):
                fa = self.concrete_bool(antecedent)
                fb = self.concrete_bool(consequent)
                return lambda values, fa=fa, fb=fb: (not fa(values)) or fb(values)
            case Iff(left, right):
                fa, fb = self.concrete_bool(left), self.concrete_bool(right)
                return lambda values, fa=fa, fb=fb: fa(values) == fb(values)
            case InSet(arg, values_set):
                fa = self.concrete_int(arg)
                return lambda values, fa=fa, members=values_set: fa(values) in members
            case _:
                raise TypeError(f"not a boolean expression: {expr!r}")

    # ------------------------------------------------------------------
    # Grid kernels (NumPy closures for vectorized finishing)
    # ------------------------------------------------------------------
    def grid_bool(self, expr: BoolExpr) -> Callable:
        """A ``grids -> bool mask`` closure over positional NumPy grids."""
        cached = self._grid.get(id(expr))
        if cached is None:
            cached = (expr, self._compile_grid_bool(expr))
            self._grid[id(expr)] = cached
        return cached[1]

    def grid_int(self, expr: IntExpr) -> Callable:
        """A ``grids -> int array`` closure over positional NumPy grids."""
        cached = self._grid.get(id(expr))
        if cached is None:
            cached = (expr, self._compile_grid_int(expr))
            self._grid[id(expr)] = cached
        return cached[1]

    def _compile_grid_int(self, expr: IntExpr) -> Callable:
        np = vectoreval.require_numpy()
        match expr:
            case Lit(value):
                return lambda grids, value=value: value
            case Var(name):
                dim = self.index[name]
                return lambda grids, dim=dim: grids[dim]
            case Add(left, right):
                fa, fb = self.grid_int(left), self.grid_int(right)
                return lambda grids, fa=fa, fb=fb: fa(grids) + fb(grids)
            case Sub(left, right):
                fa, fb = self.grid_int(left), self.grid_int(right)
                return lambda grids, fa=fa, fb=fb: fa(grids) - fb(grids)
            case Neg(arg):
                fa = self.grid_int(arg)
                return lambda grids, fa=fa: -fa(grids)
            case Scale(coeff, arg):
                fa = self.grid_int(arg)
                return lambda grids, fa=fa, coeff=coeff: coeff * fa(grids)
            case Abs(arg):
                fa = self.grid_int(arg)
                return lambda grids, fa=fa, np=np: np.abs(fa(grids))
            case Min(left, right):
                fa, fb = self.grid_int(left), self.grid_int(right)
                return lambda grids, fa=fa, fb=fb, np=np: np.minimum(
                    fa(grids), fb(grids)
                )
            case Max(left, right):
                fa, fb = self.grid_int(left), self.grid_int(right)
                return lambda grids, fa=fa, fb=fb, np=np: np.maximum(
                    fa(grids), fb(grids)
                )
            case IntIte(cond, then_branch, else_branch):
                fc = self.grid_bool(cond)
                ft = self.grid_int(then_branch)
                fe = self.grid_int(else_branch)
                return lambda grids, fc=fc, ft=ft, fe=fe, np=np: np.where(
                    fc(grids), ft(grids), fe(grids)
                )
            case _:
                raise TypeError(f"not an integer expression: {expr!r}")

    def _compile_grid_bool(self, expr: BoolExpr) -> Callable:
        np = vectoreval.require_numpy()
        match expr:
            case BoolLit(value):
                return lambda grids, value=value: value
            case Cmp(op, left, right):
                fa, fb = self.grid_int(left), self.grid_int(right)
                cmp = _CMP_CONCRETE[op]
                return lambda grids, fa=fa, fb=fb, cmp=cmp: cmp(fa(grids), fb(grids))
            case And(args):
                fns = tuple(self.grid_bool(arg) for arg in args)

                def run_and(grids, fns=fns):
                    result = True
                    for fn in fns:
                        result = result & fn(grids)
                    return result

                return run_and
            case Or(args):
                fns = tuple(self.grid_bool(arg) for arg in args)

                def run_or(grids, fns=fns):
                    result = False
                    for fn in fns:
                        result = result | fn(grids)
                    return result

                return run_or
            case Not(arg):
                # logical_not, not ``~``: on scalar Python bools ``~True``
                # is -2, which would silently corrupt mask reductions.
                fa = self.grid_bool(arg)
                return lambda grids, fa=fa, np=np: np.logical_not(fa(grids))
            case Implies(antecedent, consequent):
                fa = self.grid_bool(antecedent)
                fb = self.grid_bool(consequent)
                return lambda grids, fa=fa, fb=fb, np=np: (
                    np.logical_not(fa(grids)) | fb(grids)
                )
            case Iff(left, right):
                fa, fb = self.grid_bool(left), self.grid_bool(right)
                return lambda grids, fa=fa, fb=fb: fa(grids) == fb(grids)
            case InSet(arg, values):
                fa = self.grid_int(arg)
                members = np.array(sorted(values), dtype=np.int64)
                return lambda grids, fa=fa, members=members, np=np: np.isin(
                    fa(grids), members
                )
            case _:
                raise TypeError(f"not a boolean expression: {expr!r}")


# ---------------------------------------------------------------------------
# The service-layer seam: one compiled predicate per (query, secret type)
# ---------------------------------------------------------------------------

_PREDICATE_CACHE: dict[tuple[BoolExpr, tuple[str, ...]], Callable] = {}
_PREDICATE_CACHE_CAP = 1024


def concrete_predicate(
    query: BoolExpr, names: Sequence[str]
) -> Callable[[Mapping[str, int]], bool]:
    """A compiled ``env -> bool`` predicate for a query, cached structurally.

    This is what makes ``QInfo.run`` (and therefore every service
    ``downgrade``) pay the lowering once per distinct query instead of a
    full tree walk per request.
    """
    key = (query, tuple(names))
    fn = _PREDICATE_CACHE.get(key)
    if fn is None:
        space = KernelSpace(names)
        raw = space.concrete_bool(query)
        order = tuple(names)

        def fn(env: Mapping[str, int], raw=raw, order=order) -> bool:
            return raw(tuple(env[name] for name in order))

        if len(_PREDICATE_CACHE) >= _PREDICATE_CACHE_CAP:
            _PREDICATE_CACHE.clear()
        _PREDICATE_CACHE[key] = fn
    return fn
