"""The asyncio gateway: one event loop in front of shards, store, ledger.

This is the composition root of the serving runtime::

    clients ──► DeclassificationServer (asyncio)
                  │ compile path          │ downgrade path
                  ▼                       ▼
            ShardedCompilePool      per-tick batches ──► SessionManager
              (process shards)            │                   │
                  │                 PrivacyBudgetLedger   DeclassificationService
                  ▼                  (admission/commit)       (audit trail)
            SynthesisCache ◄──────────────┘
                  │ write-through / warm start
                  ▼
              SQLiteStore

Two amortization mechanisms live here, both pure event-loop state:

* **in-flight coalescing** — concurrent compile requests for the same
  *canonical* problem (same cache key) collapse onto one shard job; every
  waiter registers its own name against the one artifact;
* **tick batching** — downgrade requests are queued, and each tick serves
  all requests for one query through a single
  :meth:`~repro.service.api.DeclassificationService.handle_batch` pass,
  so a thousand concurrent askers of one query cost one ind.-set fetch
  and one memoized intersection per distinct prior.

The ledger interposes on every downgrade: admission is checked (on both
potential posteriors — secret-independent) *before* the batch runs, and
answered queries are committed after.  A budget refusal therefore never
reaches the session layer at all: the session's knowledge, the user's
bounds, and the response are all untouched — only the refusal itself is
observable.

Restart story: everything the runtime must not lose — compiled artifacts
— lives in the store; everything else (sessions, queues, in-flight
futures) is ephemeral by design.  Boot = construct a server on the same
store path; the cache preloads every artifact and previously-served
queries register with zero shard jobs (the kill-and-restart test in
``tests/server/test_gateway.py`` asserts exactly that).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.plugin import CompileOptions
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec, SecretValue
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import ProtectedSecret
from repro.server.ledger import PrivacyBudgetLedger
from repro.server.workers import ShardedCompilePool, ShardOverloaded
from repro.service.api import (
    BatchDowngradeRequest,
    CompileRequest,
    DeclassificationService,
    DowngradeResult,
)
from repro.service.cache import CacheBackend, SynthesisCache
from repro.service.session import Session

__all__ = [
    "ServerOverloaded",
    "ServerConfig",
    "ServerCompileReceipt",
    "ServerStats",
    "DeclassificationServer",
]


class ServerOverloaded(RuntimeError):
    """Load shedding: the downgrade queue reached its configured bound."""


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the serving runtime."""

    #: Compile shards (single-worker processes, routed by content hash).
    shards: int = 1
    #: Per-shard in-flight bound before compile jobs are shed.
    max_pending_compiles: int = 8
    #: Total queued downgrade requests before the gateway sheds.
    max_queued_downgrades: int = 10_000
    #: Seconds between background ticks when :meth:`start`-ed.
    tick_interval: float = 0.002
    #: Run compiles synchronously in-process instead of shard processes.
    inline_compiles: bool = False
    #: Approximation mode driving enforcement (the paper uses ``under``).
    mode: str = "under"
    #: Check the policy on both posteriors before running a query.
    check_both: bool = True


@dataclass(frozen=True)
class ServerCompileReceipt:
    """What one gateway compile cost, and which mechanism paid for it.

    Exactly one of ``cache_hit``/``coalesced`` is True unless the shard
    pool actually ran synthesis (both False).  ``shard`` is set only when
    this request submitted the job.
    """

    name: str
    cache_hit: bool
    coalesced: bool
    shard: int | None
    verified: bool
    synth_time: float
    verify_time: float


@dataclass
class ServerStats:
    """Gateway counters (monotone over the server's lifetime)."""

    compiles: int = 0
    compile_cache_hits: int = 0
    compile_coalesced: int = 0
    compile_shed: int = 0
    downgrades_served: int = 0
    budget_refusals: int = 0
    ticks: int = 0
    #: Artifacts preloaded from the store at boot.
    warm_entries: int = 0


@dataclass
class _PendingDowngrade:
    session_id: str
    future: asyncio.Future = field(repr=False)


class DeclassificationServer:
    """Sharded asynchronous declassification over a persistent store.

    Layers a coalescing/batching asyncio gateway, a sharded compile pool,
    and a privacy-budget ledger on top of the synchronous
    :class:`~repro.service.api.DeclassificationService` (which keeps
    owning sessions and the audit trail).
    """

    def __init__(
        self,
        policy: QuantitativePolicy,
        *,
        budget_floor: QuantitativePolicy | None = None,
        store: CacheBackend | None = None,
        options: CompileOptions = CompileOptions(),
        config: ServerConfig = ServerConfig(),
    ):
        self.config = config
        self.default_options = options
        self.store = store
        cache = SynthesisCache(backend=store)
        self.service = DeclassificationService(
            policy,
            options=options,
            cache=cache,
            mode=config.mode,
            check_both=config.check_both,
        )
        self.ledger = (
            None if budget_floor is None else PrivacyBudgetLedger(budget_floor)
        )
        self.pool = ShardedCompilePool(
            config.shards,
            max_pending=config.max_pending_compiles,
            inline=config.inline_compiles,
        )
        self.stats = ServerStats(warm_entries=len(cache))
        #: Session id → durable user id for the ledger.
        self._users: dict[str, str] = {}
        #: Compile futures keyed by cache key; waiters coalesce onto them.
        self._inflight: dict[str, asyncio.Future] = {}
        #: Queued downgrades, grouped by query name for per-tick batching.
        self._queue: dict[str, list[_PendingDowngrade]] = {}
        self._queued = 0
        #: Serializes whole flushes: ledger commits therefore always run
        #: under the same admission state their round was checked in.
        self._flush_lock = asyncio.Lock()
        self._flush_task: asyncio.Task | None = None
        self._ticker: asyncio.Task | None = None

    # -- conveniences --------------------------------------------------------
    @property
    def cache(self) -> SynthesisCache:
        """The shared artifact cache (write-through to the store)."""
        return self.service.cache

    @property
    def manager(self):
        """The session manager (thread-safe; owned by the service)."""
        return self.service.manager

    # -- compile path --------------------------------------------------------
    async def register_query(self, request: CompileRequest) -> ServerCompileReceipt:
        """Make a query declassifiable, through cache, coalescing, or shards.

        Resolution order: (1) the shared cache (memory, warm-started from
        the store) — a lookup; (2) an identical canonical problem already
        in flight — await the same shard job; (3) a fresh job on the
        query's shard, written through to the store on completion.
        Raises :class:`~repro.server.workers.ShardOverloaded` when the
        shard sheds the job.
        """
        options = (
            request.options if request.options is not None else self.default_options
        )
        query = (
            parse_bool(request.query)
            if isinstance(request.query, str)
            else request.query
        )
        request = replace(request, query=query, options=options)
        key = self.cache.key_for(query, request.secret, options)

        if key in self.cache:
            receipt = self.service.register_query(request)
            self.stats.compile_cache_hits += 1
            return ServerCompileReceipt(
                name=receipt.name,
                cache_hit=True,
                coalesced=False,
                shard=None,
                verified=receipt.verified,
                synth_time=receipt.synth_time,
                verify_time=receipt.verify_time,
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            await asyncio.shield(inflight)
            receipt = self.service.register_query(request)
            self.stats.compile_coalesced += 1
            return ServerCompileReceipt(
                name=receipt.name,
                cache_hit=False,
                coalesced=True,
                shard=None,
                verified=receipt.verified,
                synth_time=receipt.synth_time,
                verify_time=receipt.verify_time,
            )

        loop = asyncio.get_running_loop()
        inflight = loop.create_future()
        self._inflight[key] = inflight
        try:
            try:
                job = self.pool.submit(
                    request.name, query, request.secret, options
                )
            except ShardOverloaded:
                self.stats.compile_shed += 1
                raise
            shard = self.pool.shard_for(query)
            result_json = await asyncio.wrap_future(job)
            compiled, _provenance = self.pool.decode(result_json)
            self.cache.put(key, compiled)
        except BaseException as exc:
            inflight.set_exception(exc)
            # The exception is delivered to every coalesced waiter; if
            # there are none, mark it retrieved so the loop stays quiet.
            inflight.exception()
            raise
        else:
            inflight.set_result(key)
        finally:
            self._inflight.pop(key, None)

        receipt = self.service.register_query(request)
        self.stats.compiles += 1
        return ServerCompileReceipt(
            name=receipt.name,
            cache_hit=False,
            coalesced=False,
            shard=shard,
            verified=receipt.verified,
            synth_time=receipt.synth_time,
            verify_time=receipt.verify_time,
        )

    # -- session lifecycle ---------------------------------------------------
    def open_session(
        self,
        session_id: str,
        secret: ProtectedSecret | tuple[SecretSpec, SecretValue],
        *,
        user_id: str | None = None,
    ) -> Session:
        """Open a session, bound to a durable user identity for the ledger.

        ``user_id`` defaults to the session id; pass the same user for
        successive sessions to make the budget survive reconnects (the
        whole point of the ledger).
        """
        session = self.service.open_session(session_id, secret)
        self._users[session_id] = user_id if user_id is not None else session_id
        return session

    def close_session(self, session_id: str) -> Session:
        """Close a session.  The user's ledger account (budget) remains."""
        self._users.pop(session_id, None)
        return self.service.close_session(session_id)

    # -- downgrade path --------------------------------------------------------
    async def downgrade(self, session_id: str, query_name: str) -> DowngradeResult:
        """Queue one downgrade; resolves when its tick's batch is served."""
        if self._queued >= self.config.max_queued_downgrades:
            raise ServerOverloaded(
                f"{self._queued} downgrades queued >= bound "
                f"{self.config.max_queued_downgrades}"
            )
        loop = asyncio.get_running_loop()
        pending = _PendingDowngrade(session_id, loop.create_future())
        self._queue.setdefault(query_name, []).append(pending)
        self._queued += 1
        ticking = self._ticker is not None and not self._ticker.done()
        if not ticking and self._flush_task is None:
            self._flush_task = loop.create_task(self.flush())
        return await pending.future

    async def flush(self) -> int:
        """Serve everything queued, one batch per query name; returns count.

        Failure isolation: a batch that raises fails only *its own*
        waiters (the exception lands on their futures) — later query
        groups are still served, and the background ticker survives.  On
        cancellation (``stop()`` mid-flush) the not-yet-started groups
        are requeued so the final flush serves them rather than dropping
        them.
        """
        async with self._flush_lock:
            self._flush_task = None
            queue, self._queue = self._queue, {}
            self._queued -= sum(len(waiters) for waiters in queue.values())
            self.stats.ticks += 1 if queue else 0
            served = 0
            groups = list(queue.items())
            for index, (query_name, waiters) in enumerate(groups):
                try:
                    results = await asyncio.to_thread(
                        self._serve_batch, query_name, waiters
                    )
                except asyncio.CancelledError:
                    # This group's thread may have partially applied; its
                    # waiters get the cancellation.  Untouched groups go
                    # back on the queue for the final flush.
                    for pending in waiters:
                        if not pending.future.done():
                            pending.future.cancel()
                    for later_name, later_waiters in groups[index + 1:]:
                        remaining = [
                            p for p in later_waiters if not p.future.done()
                        ]
                        self._queue.setdefault(later_name, []).extend(remaining)
                        self._queued += len(remaining)
                    raise
                except Exception as exc:
                    for pending in waiters:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
                    continue
                for pending in waiters:
                    if not pending.future.done():
                        pending.future.set_result(results[pending.session_id])
                served += len(waiters)
            self.stats.downgrades_served += served
            return served

    def _serve_batch(
        self, query_name: str, waiters: list[_PendingDowngrade]
    ) -> dict[str, DowngradeResult]:
        """One tick's worth of one query (runs on a worker thread).

        Ledger admission first (secret-independent), then one batched
        pass through the service for the admitted sessions, then ledger
        commits for the answered ones.

        When one *user* has several sessions in the same tick, their
        sessions are served in successive rounds — each round holds at
        most one session per user, so every ledger commit immediately
        follows the preauthorization it was admitted under (a user's
        second session sees the bound its first session produced, and is
        cleanly refused if that bound no longer affords the query).
        """
        ids = list(dict.fromkeys(p.session_id for p in waiters))
        compiled = self.manager.registry.lookup(query_name)
        results: dict[str, DowngradeResult] = {}
        for round_ids in self._rounds_by_user(ids):
            self._serve_round(query_name, compiled, round_ids, results)
        return results

    def _rounds_by_user(self, ids: list[str]) -> list[list[str]]:
        """Partition session ids so no round repeats a ledger user."""
        rounds: list[list[str]] = []
        placed: list[set[str]] = []
        for sid in ids:
            user = self._users.get(sid, sid)
            for round_ids, users in zip(rounds, placed):
                if user not in users:
                    round_ids.append(sid)
                    users.add(user)
                    break
            else:
                rounds.append([sid])
                placed.append({user})
        return rounds

    def _serve_round(
        self,
        query_name: str,
        compiled,
        ids: list[str],
        results: dict[str, DowngradeResult],
    ) -> None:
        admitted: list[str] = []
        for sid in ids:
            if (
                self.ledger is None
                or compiled is None
                or sid not in self.manager.sessions
            ):
                admitted.append(sid)
                continue
            decision = self.ledger.preauthorize(
                self._users.get(sid, sid), compiled.qinfo, mode=self.config.mode
            )
            if decision.allowed:
                admitted.append(sid)
            else:
                self.stats.budget_refusals += 1
                results[sid] = DowngradeResult(
                    session_id=sid,
                    query_name=query_name,
                    authorized=False,
                    response=None,
                    reason=decision.reason,
                    knowledge_size=decision.remaining,
                )
        if admitted:
            for result in self.service.handle_batch(
                BatchDowngradeRequest(query_name, tuple(admitted))
            ):
                results[result.session_id] = result
                if result.authorized and self.ledger is not None and compiled:
                    assert result.response is not None
                    self.ledger.commit(
                        self._users.get(result.session_id, result.session_id),
                        compiled.qinfo,
                        result.response,
                        mode=self.config.mode,
                    )

    # -- background ticking ----------------------------------------------------
    async def start(self) -> None:
        """Run a background ticker flushing every ``tick_interval``."""
        if self._ticker is not None:
            return

        async def tick_forever() -> None:
            try:
                while True:
                    await asyncio.sleep(self.config.tick_interval)
                    await self.flush()
            except asyncio.CancelledError:
                raise

        self._ticker = asyncio.get_running_loop().create_task(tick_forever())

    async def stop(self) -> None:
        """Cancel the ticker and serve whatever is still queued."""
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        await self.flush()

    # -- lifecycle -------------------------------------------------------------
    def shutdown(self) -> None:
        """Tear down the shard processes.  The store (if any) is the
        caller's to close; compiled artifacts are already persisted."""
        self.pool.shutdown()

    def audit_summary(self) -> dict[str, Any]:
        """A compact operational snapshot (counters + component views)."""
        return {
            "stats": vars(self.stats).copy(),
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
            },
            "shards": [vars(s) for s in self.pool.stats()],
            "open_sessions": self.manager.open_count(),
            "audit_events": len(self.service.audit),
        }
