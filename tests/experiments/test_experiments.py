"""Smoke tests for the experiment drivers (tiny parameters)."""

from repro.benchsuite.groundtruth import ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.experiments.ablations import render_a1, render_a2, render_a3, run_a2, run_a3
from repro.experiments.figure5 import (
    measure_benchmark,
    render_figure5,
    run_figure5,
)
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.probcompare import render_probcompare, run_probcompare
from repro.experiments.table1 import render_table1, run_table1


class TestTable1:
    def test_rows_match_paper_for_b1(self):
        rows = run_table1(("B1",))
        assert rows[0].truth.true_size == 259
        assert rows[0].truth.false_size == 13246

    def test_render_contains_paper_columns(self):
        rows = run_table1(("B1", "B3"))
        text = render_table1(rows)
        assert "259 / 13246" in text
        assert "Birthday" in text and "Photo" in text


class TestFigure5:
    def test_interval_measurement_b1(self):
        problem = ALL_BENCHMARKS["B1"]
        truth = ground_truth(problem)
        row = measure_benchmark(problem, truth, domain="interval", k=1, runs=1)
        # Matches the paper's Figure 5a B1 row exactly.
        assert (row.under.true_size, row.under.false_size) == (259, 9620)
        assert row.under.true_pct_diff == 0
        assert round(row.under.false_pct_diff) == 27
        assert row.under.verified and row.over.verified

    def test_powerset_measurement_b1_is_exact(self):
        problem = ALL_BENCHMARKS["B1"]
        truth = ground_truth(problem)
        row = measure_benchmark(problem, truth, domain="powerset", k=3, runs=1)
        assert row.under.true_pct_diff == 0
        assert row.under.false_pct_diff == 0

    def test_run_and_render(self):
        rows = run_figure5(domain="interval", runs=1, bench_ids=("B1", "B3"))
        text = render_figure5(rows)
        assert "Under-approximation" in text
        assert "Over-approximation" in text
        assert "B3" in text


class TestFigure6:
    def test_tiny_run(self):
        series = run_figure6(ks=(1, 2), instances=3, num_queries=4, seed=5)
        assert [s.k for s in series] == [1, 2]
        for s in series:
            assert len(s.results) == 3
            curve = s.survival_curve()
            assert len(curve) == 4
            assert all(a >= b for a, b in zip(curve, curve[1:]))  # decreasing
            assert s.alive_after(1) <= 3

    def test_higher_k_is_not_worse_overall(self):
        series = run_figure6(ks=(1, 5), instances=4, num_queries=8, seed=5)
        by_k = {s.k: s for s in series}
        assert by_k[5].mean_authorized() >= by_k[1].mean_authorized()

    def test_render(self):
        series = run_figure6(ks=(1,), instances=2, num_queries=3, seed=5)
        text = render_figure6(series)
        assert "max authorized" in text
        assert "i-th query" in text


class TestProbCompare:
    def test_anosy_at_least_as_precise(self):
        rows = run_probcompare(("B1", "B3"), k=3)
        for row in rows:
            assert row.anosy_true_size <= row.baseline_true_size
            assert row.anosy_false_size <= row.baseline_false_size

    def test_render(self):
        rows = run_probcompare(("B1",), k=2)
        text = render_probcompare(rows)
        assert "Break-even" in text


class TestAblations:
    def test_a2_precision_improves_with_k(self):
        rows = run_a2(bench_ids=("B3",), ks=(1, 3, 5))
        diffs = [r.false_pct_diff for r in rows]
        assert diffs == sorted(diffs, reverse=True)

    def test_a3_configurations_agree(self):
        results = run_a3(bench_ids=("B5",))
        counts = {r.count for r in results}
        assert len(counts) == 1

    def test_renders(self):
        from repro.experiments.ablations import run_a1

        assert "box widths" in render_a1(run_a1())
        assert "synth time" in render_a2(run_a2(bench_ids=("B3",), ks=(1, 2)))
        assert "configuration" in render_a3(run_a3(bench_ids=("B5",)))
