"""The powerset-of-intervals abstract domain ``A_P`` (paper section 4.4).

A :class:`PowersetDomain` is backed by two lists of boxes, exactly like the
paper's encoding:

* ``include`` (the paper's ``dom_i``) — regions contained in the domain;
* ``exclude`` (the paper's ``dom_o``) — regions carved *out* of the domain.

A secret belongs to the domain iff it lies in some include box and in no
exclude box.  This include/exclude representation is what makes iterative
synthesis simple (Algorithm 1 appends one box per iteration, to ``include``
for under-approximations and to ``exclude`` for over-approximations).

Deviations from the paper (both strict improvements, see DESIGN.md):

* ``size`` is *exact* for arbitrary box lists, computed on a disjoint
  decomposition, where the paper computes Σ|include| − Σ|exclude| (exact
  only when include boxes are disjoint and excludes sit inside them — an
  invariant the paper's synthesizer maintains but the data type does not).
  The paper's formula is kept as :meth:`size_disjoint_estimate`.
* ``is_subset`` is exact, where the paper's check is sound but incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec, SecretValue
from repro.lang.transform import conjoin
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.solver import vectoreval
from repro.solver.boxes import Box, subtract_boxes
from repro.solver.regions import any_box_formula, outside_boxes_formula

__all__ = ["PowersetDomain", "stack_include", "intersect_stacked"]


@dataclass(frozen=True)
class PowersetDomain(AbstractDomain):
    """A finite union of boxes minus a finite union of boxes (``A_P``)."""

    spec: SecretSpec
    include: tuple[Box, ...]
    exclude: tuple[Box, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.include, tuple):
            object.__setattr__(self, "include", tuple(self.include))
        if not isinstance(self.exclude, tuple):
            object.__setattr__(self, "exclude", tuple(self.exclude))
        space = Box(self.spec.bounds())
        for box in (*self.include, *self.exclude):
            if box.arity != self.spec.arity:
                raise ValueError(
                    f"box arity {box.arity} != secret arity {self.spec.arity}"
                )
            if not space.contains_box(box):
                raise ValueError(
                    f"box {box} exceeds the global bounds of {self.spec.name!r}"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def top(cls, spec: SecretSpec) -> "PowersetDomain":
        """The full secret space."""
        return cls(spec, (Box(spec.bounds()),), ())

    @classmethod
    def bottom(cls, spec: SecretSpec) -> "PowersetDomain":
        """The empty domain."""
        return cls(spec, (), ())

    @classmethod
    def from_interval(cls, domain: IntervalDomain) -> "PowersetDomain":
        """Lift an interval domain into the powerset domain."""
        if domain.box is None:
            return cls.bottom(domain.spec)
        return cls(domain.spec, (domain.box,), ())

    @classmethod
    def from_boxes(
        cls,
        spec: SecretSpec,
        include: Iterable[Box],
        exclude: Iterable[Box] = (),
    ) -> "PowersetDomain":
        """Build from explicit include/exclude box lists."""
        return cls(spec, tuple(include), tuple(exclude))

    # -- geometry ---------------------------------------------------------
    def pieces(self) -> list[Box]:
        """The represented set as pairwise-disjoint boxes (cached)."""
        cached = getattr(self, "_pieces_cache", None)
        if cached is None:
            cached = subtract_boxes(self.include, self.exclude)
            object.__setattr__(self, "_pieces_cache", cached)
        return cached

    # -- AbstractDomain methods ---------------------------------------------
    def contains(self, secret: SecretValue) -> bool:
        point = self.spec.validate_value(secret)
        if any(box.contains(point) for box in self.exclude):
            return False
        return any(box.contains(point) for box in self.include)

    def is_subset(self, other: AbstractDomain) -> bool:
        self._check_same_spec(other)
        other_pieces = _pieces_of(other)
        return not subtract_boxes(self.pieces(), other_pieces)

    def intersect(self, other: AbstractDomain) -> "PowersetDomain":
        self._check_same_spec(other)
        if isinstance(other, IntervalDomain):
            other = PowersetDomain.from_interval(other)
        if not isinstance(other, PowersetDomain):
            raise TypeError(f"cannot intersect PowersetDomain with {type(other)}")
        include = tuple(
            overlap
            for a in self.include
            for b in other.include
            if (overlap := a.intersect(b)) is not None
        )
        exclude = self.exclude + other.exclude
        if not include:
            return PowersetDomain.bottom(self.spec)
        return PowersetDomain(self.spec, *_prune(include, exclude))

    def size(self) -> int:
        return sum(piece.volume() for piece in self.pieces())

    def size_disjoint_estimate(self) -> int:
        """The paper's Σ|include| − Σ|exclude| size formula.

        Exact only when include boxes are pairwise disjoint and exclude
        boxes are disjoint and contained in the include region — the
        invariant Algorithm 1 maintains.  Kept for fidelity/benchmarks.
        """
        inc = sum(box.volume() for box in self.include)
        exc = sum(box.volume() for box in self.exclude)
        return inc - exc

    def is_empty(self) -> bool:
        return not self.pieces()

    def member_formula(self) -> BoolExpr:
        names = self.spec.field_names
        return conjoin(
            (
                any_box_formula(self.include, names),
                outside_boxes_formula(self.exclude, names),
            )
        )

    # -- conveniences ------------------------------------------------------
    def boxes(self) -> Sequence[Box]:
        """The domain as disjoint boxes (same as :meth:`pieces`)."""
        return self.pieces()

    def normalized(self) -> "PowersetDomain":
        """An equivalent domain with no exclude boxes (disjoint includes)."""
        return PowersetDomain(self.spec, tuple(self.pieces()), ())

    def __repr__(self) -> str:
        return (
            f"PowersetDomain({self.spec.name}, include={list(self.include)}, "
            f"exclude={list(self.exclude)})"
        )


def _pieces_of(domain: AbstractDomain) -> list[Box]:
    if isinstance(domain, PowersetDomain):
        return domain.pieces()
    if isinstance(domain, IntervalDomain):
        return list(domain.boxes())
    raise TypeError(f"unsupported domain type {type(domain)}")


def _prune(
    include: tuple[Box, ...], exclude: tuple[Box, ...]
) -> tuple[tuple[Box, ...], tuple[Box, ...]]:
    """Drop redundant boxes after an intersection.

    Intersecting powersets of k1 and k2 boxes yields up to k1*k2 boxes
    (the blow-up the paper observes in section 6.2); many are contained in
    others or no longer touch any include region.  Pruning is semantics-
    preserving and keeps long downgrade chains tractable.
    """
    kept_include: list[Box] = []
    for box in sorted(include, key=Box.volume, reverse=True):
        if not any(other.contains_box(box) for other in kept_include):
            kept_include.append(box)
    kept_exclude = [
        box
        for box in exclude
        if any(box.intersect(inc) is not None for inc in kept_include)
    ]
    return tuple(kept_include), tuple(kept_exclude)


# ---------------------------------------------------------------------------
# Tensor codec: fleets of powerset domains as stacked boxes + owner index
# ---------------------------------------------------------------------------


def stack_include(domains: Sequence[PowersetDomain]) -> tuple:
    """Encode many powerset include lists as stacked box tensors.

    Returns ``(lo, hi, owner)``: int64 arrays of shape ``[m, arity]``
    over all include boxes of all domains (in domain order, each
    domain's boxes in their stored order) plus the owning domain's index
    per row.  The stacked form is what one broadcasted candidate
    intersection runs on in :func:`intersect_stacked`.
    """
    np = vectoreval.require_numpy()
    arity = domains[0].spec.arity if domains else 0
    count = sum(len(domain.include) for domain in domains)
    lo = np.empty((count, arity), dtype=np.int64)
    hi = np.empty((count, arity), dtype=np.int64)
    owner = np.empty(count, dtype=np.int64)
    row = 0
    for index, domain in enumerate(domains):
        for box in domain.include:
            lo[row] = [b[0] for b in box.bounds]
            hi[row] = [b[1] for b in box.bounds]
            owner[row] = index
            row += 1
    return lo, hi, owner


def intersect_stacked(
    priors: Sequence[PowersetDomain], other: AbstractDomain
) -> list[PowersetDomain]:
    """Intersect many powerset priors with one domain in a single broadcast.

    Bit-identical to ``[prior.intersect(other) for prior in priors]``:
    the candidate include boxes are produced by one vectorized clamp in
    the scalar path's (prior-major, other-minor) order, then fed through
    the same :func:`_prune` per prior — so objects, box order, and
    emptiness all match.
    """
    np = vectoreval.require_numpy()
    if not priors:
        return []
    if isinstance(other, IntervalDomain):
        other = PowersetDomain.from_interval(other)
    if not isinstance(other, PowersetDomain):
        raise TypeError(f"cannot intersect PowersetDomain with {type(other)}")
    lo, hi, _owner = stack_include(priors)
    q = len(other.include)
    results: list[PowersetDomain] = []
    if q and len(lo):
        olo = np.array([[b[0] for b in box.bounds] for box in other.include])
        ohi = np.array([[b[1] for b in box.bounds] for box in other.include])
        clo = np.maximum(lo[:, None, :], olo[None, :, :])
        chi = np.minimum(hi[:, None, :], ohi[None, :, :])
        valid = (clo <= chi).all(axis=2).tolist()
        clo_l = clo.tolist()
        chi_l = chi.tolist()
    else:
        valid = clo_l = chi_l = []
    row = 0
    for prior in priors:
        include: list[Box] = []
        for offset in range(len(prior.include)):
            if not q:
                break
            row_valid = valid[row + offset]
            row_lo = clo_l[row + offset]
            row_hi = chi_l[row + offset]
            for j in range(q):
                if row_valid[j]:
                    include.append(Box(tuple(zip(row_lo[j], row_hi[j]))))
        row += len(prior.include)
        if not include:
            results.append(PowersetDomain.bottom(prior.spec))
        else:
            exclude = prior.exclude + other.exclude
            results.append(
                PowersetDomain(prior.spec, *_prune(tuple(include), exclude))
            )
    return results
