"""Benchmark E5 — the section 6.1 Prob-baseline comparison.

Regenerates the ANOSY-vs-baseline cost/precision numbers (``python -m
repro.experiments.probcompare`` prints both tables).  Timings: one
benchmark for the baseline's *per-query* analysis cost, one for ANOSY's
*per-query* posterior cost, and one for ANOSY's one-time synthesis, per
problem — the three quantities behind the paper's amortization argument.
"""

import pytest

from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.benchsuite.probbaseline import hc4_posterior
from repro.core.plugin import CompileOptions, compile_query
from repro.solver.boxes import Box

BENCH_IDS = ["B1", "B3", "B5"]


@pytest.mark.parametrize("bench_id", BENCH_IDS)
def test_baseline_per_query_analysis(benchmark, bench_id):
    problem = ALL_BENCHMARKS[bench_id]
    top = Box(problem.secret.bounds())
    result = benchmark(hc4_posterior, problem.query, problem.secret, top, True)
    benchmark.extra_info["posterior_size"] = result.size()


@pytest.mark.parametrize("bench_id", BENCH_IDS)
def test_anosy_per_query_posterior(benchmark, bench_id):
    problem = ALL_BENCHMARKS[bench_id]
    compiled = compile_query(
        bench_id,
        problem.query,
        problem.secret,
        CompileOptions(domain="powerset", k=3, modes=("over",)),
    )
    prior = compiled.qinfo.over_indset[0].top(problem.secret)
    post_true, _ = benchmark(compiled.qinfo.overapprox, prior)
    benchmark.extra_info["posterior_size"] = post_true.size()


@pytest.mark.parametrize("bench_id", BENCH_IDS)
def test_anosy_one_time_synthesis(benchmark, bench_id):
    problem = ALL_BENCHMARKS[bench_id]
    options = CompileOptions(domain="powerset", k=3, modes=("over",))
    compiled = benchmark.pedantic(
        compile_query,
        args=(bench_id, problem.query, problem.secret, options),
        rounds=1,
        iterations=1,
    )
    assert compiled.reports["over"].verified
