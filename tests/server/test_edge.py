"""The HTTP edge: routes, error mapping, and idempotency passthrough."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.plugin import CompileOptions
from repro.lang.canonical import spec_to_json
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server.edge import HttpEdge, _to_edge_error
from repro.server.gateway import (
    DeclassificationServer,
    ServerConfig,
    ServerDegraded,
    ServerOverloaded,
)
from repro.server.journal import MemoryJournalBackend, RequestJournal
from repro.server.supervise import ShardCrash, ShardTimeout
from repro.server.workers import ShardOverloaded

SPEC = SecretSpec.declare("EdgeLoc", x=(0, 199), y=(0, 199))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))


@pytest.fixture(scope="module")
def edge():
    server = DeclassificationServer(
        size_above(100),
        options=OPTIONS,
        budget_floor=size_above(4000),
        config=ServerConfig(inline_compiles=True),
        journal=RequestJournal(MemoryJournalBackend()),
    )
    with HttpEdge(server) as running:
        yield running


def call(edge, method, path, body=None, key=None):
    host, port = edge.address
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method
    )
    request.add_header("Content-Type", "application/json")
    if key is not None:
        request.add_header("Idempotency-Key", key)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def test_healthz(edge):
    status, body, _ = call(edge, "GET", "/v1/healthz")
    assert status == 200 and body["status"] == "ok"
    assert body["degraded_fraction"] == 0.0
    assert body["breakers_open"] == 0
    assert body["journal_pending"] == 0


def test_full_session_lifecycle_over_http(edge):
    status, receipt, _ = call(
        edge,
        "POST",
        "/v1/queries",
        {"name": "west", "query": "x <= 99", "secret": spec_to_json(SPEC)},
    )
    assert status == 200
    assert receipt["name"] == "west" and receipt["verified"]

    status, opened, _ = call(
        edge,
        "POST",
        "/v1/sessions",
        {
            "session_id": "h1",
            "user_id": "alice",
            "secret": {"spec": spec_to_json(SPEC), "value": [30, 40]},
        },
    )
    assert status == 201
    assert opened == {"session_id": "h1", "secret": "EdgeLoc"}

    status, result, _ = call(
        edge,
        "POST",
        "/v1/downgrades",
        {"session_id": "h1", "query_name": "west"},
        key="edge/d1",
    )
    assert status == 200
    assert result["authorized"] and result["response"] is True

    # Same Idempotency-Key: the journal answers, the budget is not
    # re-charged, and the body is byte-identical.
    status, duplicate, _ = call(
        edge,
        "POST",
        "/v1/downgrades",
        {"session_id": "h1", "query_name": "west"},
        key="edge/d1",
    )
    assert status == 200 and duplicate == result
    assert edge.server.stats.journal_duplicates >= 1
    assert edge.server.ledger.remaining("alice", SPEC) == 20_000

    status, audit, _ = call(edge, "GET", "/v1/audit")
    assert status == 200
    assert audit["journal"]["duplicates"] >= 1

    status, epoch, _ = call(edge, "POST", "/v1/epochs", {"epochs": 1})
    # No decay policy on this server: advancing epochs is a 400, mapped
    # from the gateway's ValueError — still a structured body.
    assert status == 400 and epoch["error"] == "bad_request"

    status, closed, _ = call(edge, "DELETE", "/v1/sessions/h1")
    assert status == 200
    assert closed == {"session_id": "h1", "closed": True, "downgrades": 1}


def test_missing_fields_and_bad_json_are_400(edge):
    status, body, _ = call(edge, "POST", "/v1/downgrades", {"session_id": "x"})
    assert status == 400
    assert body == {"error": "bad_request", "detail": "missing field 'query_name'"}

    host, port = edge.address
    request = urllib.request.Request(
        f"http://{host}:{port}/v1/downgrades", data=b"not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    assert json.load(excinfo.value)["error"] == "bad_request"


def test_unknown_route_is_404_with_structured_body(edge):
    status, body, _ = call(edge, "GET", "/v1/nope")
    assert status == 404
    assert body["error"] == "not_found" and "/v1/nope" in body["detail"]


def test_unknown_session_is_a_domain_refusal_not_an_http_error(edge):
    # The gateway answers with an unauthorized result (a *decision*,
    # journaled and replayable) rather than an exception; the edge must
    # not second-guess it into an error status.
    status, body, _ = call(
        edge,
        "POST",
        "/v1/downgrades",
        {"session_id": "ghost", "query_name": "west"},
    )
    assert status == 200
    assert body["authorized"] is False and "ghost" in body["reason"]


# ---------------------------------------------------------------------------
# Error mapping, unit-level (no live server needed)
# ---------------------------------------------------------------------------


def test_degraded_maps_to_503_with_retry_after():
    error = _to_edge_error(ServerDegraded("shed", retry_after=0.25))
    assert error.status == 503
    assert error.headers == {"Retry-After": "1"}  # ceil, never 0
    assert error.body["error"] == "degraded"
    assert error.body["retry_after"] == 0.25


@pytest.mark.parametrize("exc", [ServerOverloaded("full"), ShardOverloaded("full")])
def test_overload_maps_to_503(exc):
    error = _to_edge_error(exc)
    assert error.status == 503 and error.body["error"] == "overloaded"


@pytest.mark.parametrize(
    "exc", [ShardCrash("died", shard=2, site="serve"), ShardTimeout("slow", shard=0)]
)
def test_shard_failures_map_to_502_with_typed_payload(exc):
    error = _to_edge_error(exc)
    assert error.status == 502
    assert error.body["error"] == "shard_failure"
    assert error.body["kind"] == exc.kind
    assert error.body["shard"] == exc.shard


def test_unexpected_exception_maps_to_500():
    error = _to_edge_error(RuntimeError("boom"))
    assert error.status == 500 and error.body["error"] == "internal"
