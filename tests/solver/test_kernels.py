"""Property and differential tests for the compiled kernel layer.

The contract of :mod:`repro.solver.kernels` is exact agreement with the
reference interpreters: concrete kernels with :mod:`repro.lang.eval`,
specialization kernels with :mod:`repro.solver.abseval`, grid kernels
with pure-Python counting, and the kernel engine's whole search with the
interpreter engine's (same answers, same split choices, same node and
split counts).
"""

from hypothesis import given, settings

from repro.lang.eval import eval_bool, eval_int
from repro.solver.abseval import eval_bool_abs, specialize
from repro.solver.boxes import Box
from repro.solver.decide import (
    InterpEngine,
    KernelEngine,
    SolverStats,
    count_models,
    decide_forall,
    find_model,
    find_true_box,
)
from repro.solver.kernels import KernelSpace, concrete_predicate
from repro.solver.split import choose_split, extract_split_hints
from tests.strategies import bool_exprs, boxes_within, int_exprs, points_within

SPACE = Box.make((-8, 12), (0, 15))
NAMES = ("x", "y")


def _env(box):
    return dict(zip(NAMES, box.bounds))


class TestConcreteKernels:
    @given(bool_exprs(NAMES), points_within(SPACE))
    @settings(max_examples=200, deadline=None)
    def test_bool_agrees_with_eval(self, formula, point):
        space = KernelSpace(NAMES)
        fn = space.concrete_bool(formula)
        assert fn(point) == eval_bool(formula, dict(zip(NAMES, point)))

    @given(int_exprs(NAMES), points_within(SPACE))
    @settings(max_examples=200, deadline=None)
    def test_int_agrees_with_eval(self, expr, point):
        space = KernelSpace(NAMES)
        fn = space.concrete_int(expr)
        assert fn(point) == eval_int(expr, dict(zip(NAMES, point)))

    @given(bool_exprs(NAMES), points_within(SPACE))
    @settings(max_examples=100, deadline=None)
    def test_predicate_cache_front_end(self, formula, point):
        predicate = concrete_predicate(formula, NAMES)
        env = dict(zip(NAMES, point))
        assert predicate(env) == eval_bool(formula, env)
        # Cached: same function object on repeat lookups.
        assert concrete_predicate(formula, NAMES) is predicate


class TestSpecKernels:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=250, deadline=None)
    def test_truth_and_residual_match_interpreter(self, formula, box):
        space = KernelSpace(NAMES)
        kernel = space.lower(formula)
        truth, residual = kernel.specialize(box.bounds)
        shrunk, expected_truth = specialize(formula, _env(box))
        assert truth is expected_truth
        assert residual.expr == shrunk

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_truth_matches_abstract_eval(self, formula, box):
        space = KernelSpace(NAMES)
        truth, _ = space.lower(formula).specialize(box.bounds)
        assert truth is eval_bool_abs(formula, _env(box))

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=100, deadline=None)
    def test_memo_returns_same_result(self, formula, box):
        space = KernelSpace(NAMES)
        kernel = space.lower(formula)
        first = kernel.specialize(box.bounds)
        hits_before = space.spec_hits
        assert kernel.specialize(box.bounds) == first
        assert space.spec_hits == hits_before + 1

    def test_hash_consing_shares_residuals(self):
        from repro.lang.parser import parse_bool

        space = KernelSpace(NAMES)
        kernel = space.lower(parse_bool("abs(x - 2) + abs(y - 8) <= 5"))
        # Two different boxes producing structurally identical residuals
        # must share one kernel object.
        _, r1 = kernel.spec(((3, 7), (0, 15)))
        _, r2 = kernel.spec(((3, 7), (1, 14)))
        assert r1 is r2


class TestGridKernels:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_grid_count_matches_brute_force(self, formula, box):
        space = KernelSpace(NAMES)
        kernel = space.lower(formula)
        expected = sum(
            eval_bool(formula, dict(zip(NAMES, point)))
            for point in box.iter_points()
        )
        assert kernel.grid_count(box) == expected
        assert kernel.grid_all(box) == (expected == box.volume())
        witness = kernel.grid_find(box)
        if expected == 0:
            assert witness is None
        else:
            assert witness is not None
            assert eval_bool(formula, dict(zip(NAMES, witness)))


class TestSplitHints:
    @given(bool_exprs(NAMES))
    @settings(max_examples=200, deadline=None)
    def test_compositional_hints_equal_extraction(self, formula):
        space = KernelSpace(NAMES)
        kernel = space.lower(formula)
        assert kernel.hints == extract_split_hints(kernel.expr, space.index)

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_kernel_split_equals_interpreter_split(self, formula, box):
        space = KernelSpace(NAMES)
        kernel = space.lower(formula)
        truth, residual = kernel.specialize(box.bounds)
        if truth.decided:
            return
        assert residual.choose_split(box) == choose_split(residual.expr, box, NAMES)


class TestEngineEquivalence:
    """The kernel and interpreter engines make identical decisions."""

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=120, deadline=None)
    def test_forall_answers_and_counts_match(self, formula, box):
        sk, si = SolverStats(), SolverStats()
        rk = decide_forall(
            formula, box, NAMES, sk,
            engine=KernelEngine(NAMES), vector_threshold=0,
        )
        ri = decide_forall(
            formula, box, NAMES, si,
            engine=InterpEngine(NAMES), vector_threshold=0,
        )
        assert rk == ri
        assert (sk.nodes, sk.splits) == (si.nodes, si.splits)

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=120, deadline=None)
    def test_model_witnesses_match(self, formula, box):
        rk = find_model(
            formula, box, NAMES, engine=KernelEngine(NAMES), vector_threshold=0
        )
        ri = find_model(
            formula, box, NAMES, engine=InterpEngine(NAMES), vector_threshold=0
        )
        assert rk == ri

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=120, deadline=None)
    def test_counts_match(self, formula, box):
        sk, si = SolverStats(), SolverStats()
        rk = count_models(
            formula, box, NAMES, sk,
            engine=KernelEngine(NAMES), vector_threshold=0,
        )
        ri = count_models(
            formula, box, NAMES, si,
            engine=InterpEngine(NAMES), vector_threshold=0,
        )
        assert rk == ri
        assert (sk.nodes, sk.splits) == (si.nodes, si.splits)

    @given(bool_exprs(NAMES))
    @settings(max_examples=80, deadline=None)
    def test_true_boxes_match(self, formula):
        rk = find_true_box(
            formula, SPACE, NAMES, engine=KernelEngine(NAMES), vector_threshold=0
        )
        ri = find_true_box(
            formula, SPACE, NAMES, engine=InterpEngine(NAMES), vector_threshold=0
        )
        assert rk == ri

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_finishing_engine_agreement(self, formula, box):
        """With grids on, both engines still agree (same thresholds)."""
        rk = find_model(
            formula, box, NAMES, engine=KernelEngine(NAMES), vector_threshold=64
        )
        ri = find_model(
            formula, box, NAMES, engine=InterpEngine(NAMES), vector_threshold=64
        )
        assert rk == ri
