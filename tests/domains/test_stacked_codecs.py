"""Tensor codec parity: stacked domain ops vs their scalar references.

The vectorized fleet path rests on three codecs — interval stacking,
powerset include-stacking, and the broadcasted stacked intersections.
Each must be *bit-identical* to the scalar operation it replaces: same
domains (same clamps, same ⊥ rule, same pruning, same candidate order)
and plain Python ``int`` bounds (``np.int64`` leaking into a ``Box``
breaks hashing parity and JSON serialization downstream).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qinfo import intersect_knowledge, intersect_many
from repro.domains import box as box_domain
from repro.domains import powerset as powerset_domain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box
from repro.solver.vectoreval import AVAILABLE

from tests.strategies import boxes_within

pytestmark = pytest.mark.skipif(not AVAILABLE, reason="NumPy not installed")

SPEC = SecretSpec.declare("Codec", x=(-8, 12), y=(0, 15))
OUTER = Box.make((-8, 12), (0, 15))


def interval_domains():
    return st.one_of(
        st.just(IntervalDomain.bottom(SPEC)),
        boxes_within(OUTER).map(lambda b: IntervalDomain(SPEC, b)),
    )


def powerset_domains(k=3):
    return st.lists(boxes_within(OUTER), min_size=1, max_size=k).map(
        lambda boxes: PowersetDomain.from_boxes(SPEC, boxes)
    )


def _assert_python_ints(domain):
    for piece in [] if domain.box is None else [domain.box]:
        for lo, hi in piece.bounds:
            assert type(lo) is int and type(hi) is int


class TestIntervalStacking:
    @settings(deadline=None)
    @given(domains=st.lists(interval_domains(), min_size=1, max_size=6))
    def test_stack_unstack_roundtrip(self, domains):
        lo, hi = box_domain.stack_intervals(domains)
        assert box_domain.unstack_intervals(SPEC, lo, hi) == domains

    @settings(deadline=None)
    @given(
        priors=st.lists(interval_domains(), min_size=1, max_size=6),
        other=interval_domains(),
    )
    def test_intersect_stacked_matches_scalar(self, priors, other):
        stacked = box_domain.intersect_stacked(priors, other)
        for prior, got in zip(priors, stacked):
            want = prior.intersect(other)
            assert got == want
            assert got.size() == want.size()
            _assert_python_ints(got)


class TestPowersetStacking:
    @settings(deadline=None)
    @given(
        priors=st.lists(powerset_domains(), min_size=1, max_size=4),
        other=powerset_domains(),
    )
    def test_intersect_stacked_matches_scalar(self, priors, other):
        stacked = powerset_domain.intersect_stacked(priors, other)
        for prior, got in zip(priors, stacked):
            want = prior.intersect(other)
            assert got == want
            assert got.size() == want.size()

    @settings(deadline=None)
    @given(
        priors=st.lists(powerset_domains(), min_size=1, max_size=4),
        other=interval_domains(),
    )
    def test_interval_other_is_lifted(self, priors, other):
        stacked = powerset_domain.intersect_stacked(priors, other)
        for prior, got in zip(priors, stacked):
            assert got == intersect_knowledge(prior, other)


class TestIntersectMany:
    @settings(deadline=None)
    @given(
        priors=st.lists(
            st.one_of(interval_domains(), powerset_domains()),
            min_size=1,
            max_size=6,
        ),
        other=st.one_of(interval_domains(), powerset_domains()),
    )
    def test_mixed_fleets_match_pairwise_reference(self, priors, other):
        """The fleet entry point partitions mixed interval/powerset priors
        and must agree with per-pair ``intersect_knowledge`` everywhere."""
        got = intersect_many(priors, other)
        want = [intersect_knowledge(prior, other) for prior in priors]
        assert got == want


class TestSizeCache:
    def test_prefilled_sizes_match_recomputation(self):
        priors = [
            IntervalDomain(SPEC, Box.make((-8, 12), (0, 15))),
            IntervalDomain(SPEC, Box.make((0, 4), (2, 9))),
        ]
        other = IntervalDomain(SPEC, Box.make((-2, 6), (0, 5)))
        for domain in box_domain.intersect_stacked(priors, other):
            cached = domain.size()
            fresh = 0 if domain.box is None else domain.box.volume()
            assert cached == fresh
