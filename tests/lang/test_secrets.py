"""Tests for secret type declarations."""

import pytest

from repro.lang.ast import Var
from repro.lang.secrets import FieldSpec, SecretSpec


class TestFieldSpec:
    def test_width(self):
        assert FieldSpec("x", 0, 9).width == 10

    def test_contains(self):
        field = FieldSpec("x", -5, 5)
        assert field.contains(-5) and field.contains(5)
        assert not field.contains(6)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty range"):
            FieldSpec("x", 3, 2)


class TestSecretSpec:
    def test_declare(self):
        spec = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
        assert spec.arity == 2
        assert spec.field_names == ("x", "y")
        assert spec.space_size() == 400 * 400

    def test_field_lookup(self):
        spec = SecretSpec.declare("S", a=(0, 1), b=(2, 3))
        assert spec.field("b").lo == 2
        with pytest.raises(KeyError):
            spec.field("missing")

    def test_vars(self):
        spec = SecretSpec.declare("S", a=(0, 1), b=(0, 1))
        assert spec.vars() == (Var("a"), Var("b"))

    def test_bounds(self):
        spec = SecretSpec.declare("S", a=(0, 1), b=(2, 5))
        assert spec.bounds() == ((0, 1), (2, 5))

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SecretSpec("S", (FieldSpec("a", 0, 1), FieldSpec("a", 0, 1)))

    def test_no_fields_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SecretSpec("S", ())

    def test_to_env_from_tuple(self):
        spec = SecretSpec.declare("S", a=(0, 9), b=(0, 9))
        assert spec.to_env((1, 2)) == {"a": 1, "b": 2}

    def test_to_env_from_mapping(self):
        spec = SecretSpec.declare("S", a=(0, 9), b=(0, 9))
        assert spec.to_env({"b": 2, "a": 1}) == {"a": 1, "b": 2}

    def test_to_env_arity_mismatch(self):
        spec = SecretSpec.declare("S", a=(0, 9), b=(0, 9))
        with pytest.raises(ValueError, match="expects 2 fields"):
            spec.to_env((1,))

    def test_validate_value_in_bounds(self):
        spec = SecretSpec.declare("S", a=(0, 9))
        assert spec.validate_value((5,)) == (5,)

    def test_validate_value_out_of_bounds(self):
        spec = SecretSpec.declare("S", a=(0, 9))
        with pytest.raises(ValueError, match="outside"):
            spec.validate_value((10,))

    def test_iter_space(self):
        spec = SecretSpec.declare("S", a=(0, 1), b=(0, 2))
        points = list(spec.iter_space())
        assert len(points) == 6
        assert points[0] == (0, 0)
        assert points[-1] == (1, 2)

    def test_make_by_name(self):
        spec = SecretSpec.declare("S", a=(0, 9), b=(0, 9))
        assert spec.make(b=3, a=1) == (1, 3)

    def test_make_missing_field(self):
        spec = SecretSpec.declare("S", a=(0, 9), b=(0, 9))
        with pytest.raises(ValueError, match="missing"):
            spec.make(a=1)
