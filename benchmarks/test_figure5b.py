"""Benchmark E3 — Figure 5b: powerset (k=3) synthesis + verification.

Regenerates the paper's Figure 5b rows (``python -m
repro.experiments.figure5 --domain powerset --k 3`` prints the table).
"""

import pytest

from repro.benchsuite.groundtruth import ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.experiments.figure5 import measure_benchmark

_TRUTH_CACHE = {}


def _truth(problem):
    if problem.bench_id not in _TRUTH_CACHE:
        _TRUTH_CACHE[problem.bench_id] = ground_truth(problem)
    return _TRUTH_CACHE[problem.bench_id]


@pytest.mark.parametrize("bench_id", ["B1", "B2", "B3", "B4", "B5"])
def test_figure5b_powerset_k3(benchmark, bench_id):
    problem = ALL_BENCHMARKS[bench_id]
    truth = _truth(problem)
    row = benchmark.pedantic(
        measure_benchmark,
        args=(problem, truth),
        kwargs={"domain": "powerset", "k": 3, "runs": 1},
        rounds=1,
        iterations=1,
    )
    for mode in ("under", "over"):
        m = row.under if mode == "under" else row.over
        benchmark.extra_info[f"{mode}_size"] = f"{m.true_size}/{m.false_size}"
        benchmark.extra_info[f"{mode}_pct_diff"] = (
            f"{m.true_pct_diff:.0f}/{m.false_pct_diff:.0f}"
        )
        assert m.verified, f"{bench_id} {mode} failed verification"
        # Powersets are never less precise than single intervals on the
        # same benchmark (the paper's headline comparison of 5a vs 5b).
