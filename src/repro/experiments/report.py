"""Formatting helpers shared by the experiment drivers.

Keeps the drivers focused on *what* they measure: paper-style size
formatting (``2.43e+07``), median ± semi-interquartile timing (the paper's
Figure 5 statistic), aligned text tables, and a terminal rendering of
Figure 6's line chart.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = [
    "fmt_size",
    "fmt_pct",
    "median_siqr",
    "fmt_timing",
    "TextTable",
    "ascii_chart",
]


def fmt_size(value: float) -> str:
    """Sizes the way Table 1 prints them: plain ints, then ``1.01e+06``."""
    if value < 100_000:
        return str(int(value))
    return f"{value:.2e}"


def fmt_pct(value: float) -> str:
    """Percent differences: integers unless sub-percent precision matters."""
    if value >= 10 or value == int(value):
        return str(int(round(value)))
    return f"{value:.1f}"


def median_siqr(samples: Sequence[float]) -> tuple[float, float]:
    """Median and semi-interquartile range, the paper's timing statistic."""
    if not samples:
        raise ValueError("no samples")
    med = statistics.median(samples)
    if len(samples) < 2:
        return med, 0.0
    ordered = sorted(samples)
    q1, _q2, q3 = statistics.quantiles(ordered, n=4)
    return med, (q3 - q1) / 2


def fmt_timing(samples: Sequence[float]) -> str:
    """``median ± siqr`` seconds, like Figure 5's time columns."""
    med, siqr = median_siqr(samples)
    return f"{med:.2f} ± {siqr:.2f}"


@dataclass
class TextTable:
    """A minimal aligned text table."""

    headers: list[str]
    rows: list[list[str]]

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, Sequence[int]],
    *,
    height: int = 18,
    title: str = "",
) -> str:
    """Render Figure 6-style survival curves as a terminal chart.

    ``series`` maps a legend label to y-values indexed by query number
    (x-axis).  Each series is drawn with its own glyph; the y-axis is the
    instance count.
    """
    if not series:
        return "(no data)"
    glyphs = "*o+x#@%&"
    max_x = max(len(ys) for ys in series.values())
    max_y = max((max(ys) if ys else 0) for ys in series.values())
    max_y = max(max_y, 1)
    grid = [[" "] * max_x for _ in range(height + 1)]
    for index, (_label, ys) in enumerate(sorted(series.items())):
        glyph = glyphs[index % len(glyphs)]
        for x, y in enumerate(ys):
            row = round(y / max_y * height)
            grid[height - row][x] = glyph
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = round((height - row_index) / height * max_y)
        lines.append(f"{y_value:4d} |" + "".join(row))
    lines.append("     +" + "-" * max_x)
    lines.append("      " + "".join(str((i + 1) % 10) for i in range(max_x)))
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}"
        for i, label in enumerate(sorted(series))
    )
    lines.append(f"      x: i-th query   y: instances alive   [{legend}]")
    return "\n".join(lines)
