"""Experiment E1 — Table 1: exact ind.-set sizes of the benchmarks.

Prints the paper's Table 1 columns (number of secret fields, exact True /
False ind.-set sizes) next to the values the paper reports, and the time
our exact counter took.  Run as::

    python -m repro.experiments.table1
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.groundtruth import GroundTruth, ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS, BenchmarkProblem
from repro.experiments.report import TextTable, fmt_size

__all__ = ["Table1Row", "run_table1", "render_table1", "main"]


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's ground truth next to the paper's reported sizes."""

    problem: BenchmarkProblem
    truth: GroundTruth


def run_table1(bench_ids: tuple[str, ...] = ("B1", "B2", "B3", "B4", "B5")) -> list[Table1Row]:
    """Compute exact ind.-set sizes for the selected benchmarks."""
    rows = []
    for bench_id in bench_ids:
        problem = ALL_BENCHMARKS[bench_id]
        rows.append(Table1Row(problem, ground_truth(problem)))
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """The table in the paper's ``x / y`` layout plus paper-reported sizes."""
    table = TextTable(
        headers=["#", "Name", "Fields", "Size of ind. sets", "Paper reports", "Count time"],
        rows=[
            [
                row.problem.bench_id,
                row.problem.name,
                str(row.problem.field_count),
                f"{fmt_size(row.truth.true_size)} / {fmt_size(row.truth.false_size)}",
                f"{fmt_size(row.problem.paper_true_size)} / "
                f"{fmt_size(row.problem.paper_false_size)}",
                f"{row.truth.count_time:.2f}s",
            ]
            for row in rows
        ],
    )
    return table.render()


def main() -> None:
    print("Table 1: number of fields and size of the precise ind. sets")
    print(render_table1(run_table1()))


if __name__ == "__main__":
    main()
