"""Replay conformance, crash recovery, and exactly-once effects.

The kill-and-restart drill from ISSUE 9, as tests: a journaled gateway
dies in either crash window (after journal append / after execution but
before ack), a fresh process recovers from the same store, duplicate
retries get the recorded responses, budgets are never double-charged,
and :class:`ReplaySession` re-derives the whole recorded history —
decisions, refusals, audit digests — bit-for-bit.

``CHAOS_SEED`` parameterizes the seeded fault schedules, same as the
chaos suite: CI runs pinned and randomized.
"""

import asyncio
import os
import pathlib
import subprocess
import sys
from concurrent.futures.process import BrokenProcessPool

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plugin import CompileOptions
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server import faults
from repro.server.faults import CRASH_EXIT_CODE, FaultPlan, FaultSpec
from repro.server.gateway import DeclassificationServer, ServerConfig
from repro.server.journal import MemoryJournalBackend, RequestJournal
from repro.server.ledger import DecayPolicy
from repro.server.replay import ReplaySession, replay_journal
from repro.server.store import SQLiteStore
from repro.service.api import CompileRequest

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "20220622"))

SPEC = SecretSpec.declare("ReplayLoc", x=(0, 199), y=(0, 199))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
#: Secret (30, 40): west/south/inner answer True with posterior sizes
#: 20000 / 10000 / 5000 against the 40000-point prior.
QUERIES = (("west", "x <= 99"), ("south", "y <= 99"), ("inner", "x <= 49"))
SECRET = (30, 40)
CRASH_KINDS = (
    "crash_after_journal_before_execute",
    "crash_after_execute_before_ack",
)


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


def make_server(backend, **kwargs) -> DeclassificationServer:
    kwargs.setdefault("options", OPTIONS)
    kwargs.setdefault("budget_floor", size_above(4000))
    kwargs.setdefault("config", ServerConfig(inline_compiles=True))
    return DeclassificationServer(
        size_above(100), journal=RequestJournal(backend), **kwargs
    )


async def boot(server, queries=QUERIES):
    for name, text in queries:
        await server.register_query(CompileRequest(name, text, SPEC))


def bounds_of(store: SQLiteStore) -> list:
    return sorted(store.ledger_bounds())


# ---------------------------------------------------------------------------
# Conformance: record a history, replay it bit-identically
# ---------------------------------------------------------------------------


def test_recorded_history_replays_bit_identically():
    async def scenario():
        backend = MemoryJournalBackend()
        server = make_server(backend, budget_decay=DecayPolicy(radius=1))
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        for name in ("west", "south", "inner"):
            assert (await server.downgrade("s1", name)).authorized
        # Exhausted: the floor refuses, and so does re-asking an
        # answered query (both-branch check, ANOSY §3).
        refused = await server.downgrade("s1", "west")
        assert not refused.authorized
        server.advance_epoch()
        server.close_session("s1")
        server.shutdown()

        journal = RequestJournal(backend)
        report = await ReplaySession(journal).run()
        assert report.conforms
        assert report.entries == len(journal)
        assert report.replayed == report.matched == report.entries
        assert report.pending_applied == 0 and report.restarts == 0
        assert report.recorded_digest == journal.audit_digest()
        # The refusal sequence is part of the record: same request,
        # same order, same reason.
        assert [(r.session_id, r.query_name) for r in report.refusals] == [
            ("s1", "west")
        ]
        assert "budget exhausted" in report.refusals[0].reason

    asyncio.run(scenario())


def test_replay_reproduces_trace_trees_bit_identically():
    """The twin re-derives every trace tree byte-for-byte (ISSUE 10).

    Trace ids come from (idempotency key, journal seq) and span ids
    from (trace, parent, name, index), so a replayed journal must
    rebuild the exact same canonical trees — including the refused
    request's admission verdict.
    """

    async def scenario():
        backend = MemoryJournalBackend()
        server = make_server(backend, budget_decay=DecayPolicy(radius=1))
        await boot(server)
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        for name in ("west", "south", "inner"):
            assert (await server.downgrade("s1", name)).authorized
        assert not (await server.downgrade("s1", "west")).authorized
        assert not (await server.downgrade("s1", "ghost")).authorized
        source_trees = server.hub.tracer.trees()
        source_digest = server.hub.tracer.digest()
        server.shutdown()

        session = ReplaySession(
            RequestJournal(backend), trace_digest=source_digest
        )
        report = await session.run()
        assert report.conforms
        assert report.recorded_trace_digest == source_digest
        assert report.replayed_trace_digest == source_digest
        assert session.tracer.trees() == source_trees

        # Non-vacuous: one tree per downgrade, rooted at the gateway's
        # span with the shard-side decision spans as children.
        assert len(source_trees) == 5
        roots = {tree["name"] for tree in source_trees.values()}
        assert roots == {"downgrade"}
        child_names = sorted(
            child["name"]
            for tree in source_trees.values()
            for child in tree["children"]
        )
        assert "serve" in child_names and "admission" in child_names
        refused = [
            tree
            for tree in source_trees.values()
            if any(
                child["name"] == "admission"
                and child["attrs"]["allowed"] is False
                for child in tree["children"]
            )
        ]
        assert len(refused) == 1  # the exhausted re-ask of "west"

    asyncio.run(scenario())


def test_tampered_outcome_digest_is_pinpointed():
    async def scenario():
        backend = MemoryJournalBackend()
        server = make_server(backend)
        await boot(server, QUERIES[:1])
        server.open_session("s1", (SPEC, SECRET))
        await server.downgrade("s1", "west", idempotency_key="victim")
        server.shutdown()

        row = backend._rows["victim"]
        row[5] = "0" * 64  # falsify the recorded outcome digest
        report = await ReplaySession(RequestJournal(backend)).run()
        assert not report.conforms
        assert len(report.divergences) == 1
        divergence = report.divergences[0]
        assert divergence.key == "victim" and divergence.kind == "downgrade"
        assert divergence.recorded == "0" * 64
        assert report.recorded_digest != report.replayed_digest

    asyncio.run(scenario())


def test_replay_requires_a_configure_entry_first():
    journal = RequestJournal(MemoryJournalBackend())
    journal.begin("k", "downgrade", {"session_id": "s", "query_name": "q"})
    with pytest.raises(ValueError, match="configure"):
        ReplaySession(journal)
    assert replay_journal([]).conforms  # empty history is vacuously fine


def test_restart_with_changed_config_is_a_generation_boundary(tmp_path):
    async def scenario():
        store = SQLiteStore(tmp_path / "restart.db")
        server = make_server(store, store=store)
        await boot(server, QUERIES[:2])
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        assert (await server.downgrade("s1", "west")).authorized
        server.shutdown()

        # Reboot with a *different* floor: a new configure entry, hence
        # a restart boundary replay must reproduce.  The session is
        # re-opened by the operator (its liveness died with the
        # process) but the ledger — and alice's charge — persists.
        relaxed = make_server(
            store, store=store, budget_floor=size_above(100)
        )
        await relaxed.recover_from_journal()
        assert (await relaxed.downgrade("s1", "south")).authorized
        # A query compiled only in the second generation: replay must
        # register it inside generation 2, not at boot.
        await relaxed.register_query(CompileRequest("inner", "x <= 49", SPEC))
        assert (await relaxed.downgrade("s1", "inner")).authorized
        relaxed.shutdown()

        report = await ReplaySession(RequestJournal(store)).run()
        assert report.conforms
        assert report.restarts == 1
        store.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Crash windows (simulated death, in-process)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", CRASH_KINDS)
def test_crash_window_recovers_and_never_double_charges(tmp_path, kind):
    """Die in either journal crash window; recovery converges exactly.

    The uninterrupted control run establishes the expected ledger
    bounds; the crashed-and-recovered run must land byte-identical,
    a duplicate retry must answer from the journal, and the recorded
    history must replay bit-for-bit.
    """

    async def control():
        store = SQLiteStore(tmp_path / "control.db")
        server = make_server(store, store=store)
        await boot(server, QUERIES[:2])
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        await server.downgrade("s1", "west", idempotency_key="d1")
        result = await server.downgrade("s1", "south", idempotency_key="d2")
        server.shutdown()
        expected = bounds_of(store)
        store.close()
        return expected, result

    async def crashed():
        store = SQLiteStore(tmp_path / "crash.db")
        server = make_server(store, store=store)
        await boot(server, QUERIES[:2])
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        await server.downgrade("s1", "west", idempotency_key="d1")
        faults.install_fault_plan(
            FaultPlan([FaultSpec(site="journal", kind=kind)], seed=CHAOS_SEED),
            simulate=True,
        )
        with pytest.raises(BrokenProcessPool):
            await server.downgrade("s1", "south", idempotency_key="d2")
        faults.clear_fault_plan()
        # The process is "dead": no shutdown, no flush, buffered
        # ledger-mirror writes lost with it.  Boot a successor on the
        # same store.
        reborn = make_server(store, store=store)
        recovery = await reborn.recover_from_journal()
        assert recovery.queries == 2 and recovery.sessions == 1
        assert recovery.reapplied == 1  # the unacked "d2"
        # A client retry of the in-doubt request answers from the
        # journal — no re-execution, no double charge.
        retried = await reborn.downgrade("s1", "south", idempotency_key="d2")
        assert retried.authorized and retried.response is True
        assert reborn.stats.journal_duplicates >= 1
        assert reborn.ledger.remaining("alice", SPEC) == 10_000
        reborn.shutdown()
        actual = bounds_of(store)
        report = await ReplaySession(RequestJournal(store)).run()
        store.close()
        return actual, retried, report

    expected, control_result = asyncio.run(control())
    actual, retried, report = asyncio.run(crashed())
    assert actual == expected
    assert retried.knowledge_size == control_result.knowledge_size
    assert report.conforms


# ---------------------------------------------------------------------------
# Real process death (actual SIGKILL via os._exit in a child process)
# ---------------------------------------------------------------------------

_CHILD = """
import asyncio, sys
from repro.core.plugin import CompileOptions
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server import faults
from repro.server.faults import FaultPlan, FaultSpec
from repro.server.gateway import DeclassificationServer, ServerConfig
from repro.server.journal import RequestJournal
from repro.server.store import SQLiteStore
from repro.service.api import CompileRequest

path, kind, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
SPEC = SecretSpec.declare("ReplayLoc", x=(0, 199), y=(0, 199))

async def main():
    store = SQLiteStore(path)
    server = DeclassificationServer(
        size_above(100),
        options=CompileOptions(domain="interval", modes=("under", "over")),
        budget_floor=size_above(4000),
        config=ServerConfig(inline_compiles=True),
        store=store,
        journal=RequestJournal(store),
    )
    for name, text in (("west", "x <= 99"), ("south", "y <= 99")):
        await server.register_query(CompileRequest(name, text, SPEC))
    server.open_session("s1", (SPEC, (30, 40)), user_id="alice")
    await server.downgrade("s1", "west", idempotency_key="d1")
    faults.install_fault_plan(
        FaultPlan([FaultSpec(site="journal", kind=kind)], seed=seed)
    )
    await server.downgrade("s1", "south", idempotency_key="d2")  # dies here

asyncio.run(main())
"""


@pytest.mark.parametrize("kind", CRASH_KINDS)
def test_sigkill_drill_child_process_dies_parent_recovers(tmp_path, kind):
    """Process-mode faults: the child genuinely dies mid-request.

    Unlike the simulated windows above, nothing in the child gets to
    run after the fault — ``os._exit``, no finalizers, no flush.  The
    parent plays the operator: reopen the store, boot, recover, retry.
    """
    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    db = tmp_path / "drill.db"
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(db), kind, str(CHAOS_SEED)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == CRASH_EXIT_CODE, proc.stderr

    async def recover():
        store = SQLiteStore(db)
        journal = RequestJournal(store)
        assert len(journal.pending()) == 1  # the in-doubt "d2"
        server = make_server(store, store=store)
        recovery = await server.recover_from_journal()
        assert recovery.reapplied == 1
        retried = await server.downgrade("s1", "south", idempotency_key="d2")
        assert retried.authorized and retried.response is True
        assert server.ledger.remaining("alice", SPEC) == 10_000
        assert journal.pending() == []
        server.shutdown()
        report = await ReplaySession(RequestJournal(store)).run()
        assert report.conforms
        store.close()

    asyncio.run(recover())


# ---------------------------------------------------------------------------
# Exactly-once effects under arbitrary duplicate delivery (property)
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    deliveries=st.lists(
        st.sampled_from(["west", "south"]), min_size=2, max_size=8
    ).filter(lambda d: set(d) == {"west", "south"})
)
def test_duplicate_deliveries_never_double_charge(deliveries):
    """Any duplicated/reordered delivery schedule charges like one pass.

    Each query name is delivered under one idempotency key however many
    times the schedule says; the final ledger position and journal
    length must equal the control run that delivered each key once.
    """

    async def run(schedule):
        server = make_server(MemoryJournalBackend())
        await boot(server, QUERIES[:2])
        server.open_session("s1", (SPEC, SECRET), user_id="alice")
        responses = {}
        for name in schedule:
            result = await server.downgrade(
                "s1", name, idempotency_key=f"d/{name}"
            )
            if name in responses:
                assert result.knowledge_size == responses[name].knowledge_size
                assert result.authorized == responses[name].authorized
            responses[name] = result
        remaining = server.ledger.remaining("alice", SPEC)
        entries = len(server.journal)
        server.shutdown()
        return remaining, entries

    remaining, entries = asyncio.run(run(deliveries))
    control_remaining, control_entries = asyncio.run(run(["west", "south"]))
    assert remaining == control_remaining == 10_000
    assert entries == control_entries
