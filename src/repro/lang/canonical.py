"""Canonical forms, stable hashing, and JSON serialization for query ASTs.

The synthesis cache (:mod:`repro.service.cache`) must recognize that two
textually different queries denote the same declassification — e.g.
``x >= 5 and y <= 3`` vs ``y <= 3 and x >= 5`` — so a compiled artifact is
reused instead of re-running the optimizer.  :func:`canonicalize` rewrites
an expression into a normal form modulo the *semantics-preserving*
symmetries of the query language:

* commutative connectives (``and``, ``or``, ``<=>``) have their arguments
  sorted and duplicates dropped;
* commutative arithmetic (``+``, ``min``, ``max``) has its operands sorted;
* mirrored comparisons are flipped to a preferred direction
  (``a >= b`` becomes ``b <= a``; ``==``/``!=`` operands are sorted).

:func:`stable_hash` then hashes the canonical JSON encoding, which — unlike
Python's ``hash`` — is stable across processes, making it usable as a
persistent cache key.  :func:`expr_to_json`/:func:`expr_from_json` and
:func:`spec_to_json`/:func:`spec_from_json` are exact round-trip codecs for
expressions and secret declarations.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    Expr,
    Iff,
    Implies,
    InSet,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.secrets import FieldSpec, SecretSpec

__all__ = [
    "canonicalize",
    "stable_hash",
    "expr_to_json",
    "expr_from_json",
    "spec_to_json",
    "spec_from_json",
    "spec_fingerprint",
]


# ---------------------------------------------------------------------------
# JSON codec
# ---------------------------------------------------------------------------


def expr_to_json(expr: Expr) -> dict[str, Any]:
    """Encode an expression as JSON-compatible data (exact round trip)."""
    match expr:
        case Lit(value):
            return {"node": "Lit", "value": value}
        case Var(name):
            return {"node": "Var", "name": name}
        case Add(left, right):
            return {"node": "Add", "left": expr_to_json(left), "right": expr_to_json(right)}
        case Sub(left, right):
            return {"node": "Sub", "left": expr_to_json(left), "right": expr_to_json(right)}
        case Neg(arg):
            return {"node": "Neg", "arg": expr_to_json(arg)}
        case Scale(coeff, arg):
            return {"node": "Scale", "coeff": coeff, "arg": expr_to_json(arg)}
        case Abs(arg):
            return {"node": "Abs", "arg": expr_to_json(arg)}
        case Min(left, right):
            return {"node": "Min", "left": expr_to_json(left), "right": expr_to_json(right)}
        case Max(left, right):
            return {"node": "Max", "left": expr_to_json(left), "right": expr_to_json(right)}
        case IntIte(cond, then_branch, else_branch):
            return {
                "node": "IntIte",
                "cond": expr_to_json(cond),
                "then": expr_to_json(then_branch),
                "else": expr_to_json(else_branch),
            }
        case BoolLit(value):
            return {"node": "BoolLit", "value": value}
        case Cmp(op, left, right):
            return {
                "node": "Cmp",
                "op": op.name,
                "left": expr_to_json(left),
                "right": expr_to_json(right),
            }
        case And(args):
            return {"node": "And", "args": [expr_to_json(arg) for arg in args]}
        case Or(args):
            return {"node": "Or", "args": [expr_to_json(arg) for arg in args]}
        case Not(arg):
            return {"node": "Not", "arg": expr_to_json(arg)}
        case Implies(antecedent, consequent):
            return {
                "node": "Implies",
                "antecedent": expr_to_json(antecedent),
                "consequent": expr_to_json(consequent),
            }
        case Iff(left, right):
            return {"node": "Iff", "left": expr_to_json(left), "right": expr_to_json(right)}
        case InSet(arg, values):
            return {"node": "InSet", "arg": expr_to_json(arg), "values": sorted(values)}
        case _:
            raise TypeError(f"unknown AST node: {expr!r}")


def expr_from_json(data: dict[str, Any]) -> Expr:
    """Decode an expression encoded by :func:`expr_to_json`."""
    node = data["node"]
    match node:
        case "Lit":
            return Lit(int(data["value"]))
        case "Var":
            return Var(data["name"])
        case "Add":
            return Add(expr_from_json(data["left"]), expr_from_json(data["right"]))
        case "Sub":
            return Sub(expr_from_json(data["left"]), expr_from_json(data["right"]))
        case "Neg":
            return Neg(expr_from_json(data["arg"]))
        case "Scale":
            return Scale(int(data["coeff"]), expr_from_json(data["arg"]))
        case "Abs":
            return Abs(expr_from_json(data["arg"]))
        case "Min":
            return Min(expr_from_json(data["left"]), expr_from_json(data["right"]))
        case "Max":
            return Max(expr_from_json(data["left"]), expr_from_json(data["right"]))
        case "IntIte":
            return IntIte(
                expr_from_json(data["cond"]),
                expr_from_json(data["then"]),
                expr_from_json(data["else"]),
            )
        case "BoolLit":
            return BoolLit(bool(data["value"]))
        case "Cmp":
            return Cmp(
                CmpOp[data["op"]],
                expr_from_json(data["left"]),
                expr_from_json(data["right"]),
            )
        case "And":
            return And(tuple(expr_from_json(arg) for arg in data["args"]))
        case "Or":
            return Or(tuple(expr_from_json(arg) for arg in data["args"]))
        case "Not":
            return Not(expr_from_json(data["arg"]))
        case "Implies":
            return Implies(
                expr_from_json(data["antecedent"]), expr_from_json(data["consequent"])
            )
        case "Iff":
            return Iff(expr_from_json(data["left"]), expr_from_json(data["right"]))
        case "InSet":
            return InSet(expr_from_json(data["arg"]), frozenset(data["values"]))
        case _:
            raise ValueError(f"unknown node tag: {node!r}")


def _sort_key(expr: Expr) -> str:
    """A total order on (already canonical) expressions."""
    return json.dumps(expr_to_json(expr), sort_keys=True)


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------

# GE/GT mirror LE/LT with swapped operands; the canonical form keeps only
# the "less-than" direction.
_MIRRORED = {CmpOp.GE: CmpOp.LE, CmpOp.GT: CmpOp.LT}


def canonicalize(expr: Expr) -> Expr:
    """A semantics-preserving normal form modulo commutative symmetries.

    Two queries that differ only by the order of commutative operands,
    duplicated conjuncts/disjuncts, or mirrored comparisons canonicalize
    to structurally equal (hence equally hashed) expressions.
    """
    match expr:
        case Lit() | Var() | BoolLit():
            return expr
        case Add(left, right):
            parts = sorted((canonicalize(left), canonicalize(right)), key=_sort_key)
            return Add(parts[0], parts[1])
        case Sub(left, right):
            return Sub(canonicalize(left), canonicalize(right))
        case Neg(arg):
            return Neg(canonicalize(arg))
        case Scale(coeff, arg):
            return Scale(coeff, canonicalize(arg))
        case Abs(arg):
            return Abs(canonicalize(arg))
        case Min(left, right):
            parts = sorted((canonicalize(left), canonicalize(right)), key=_sort_key)
            return Min(parts[0], parts[1])
        case Max(left, right):
            parts = sorted((canonicalize(left), canonicalize(right)), key=_sort_key)
            return Max(parts[0], parts[1])
        case IntIte(cond, then_branch, else_branch):
            return IntIte(
                canonicalize(cond), canonicalize(then_branch), canonicalize(else_branch)
            )
        case Cmp(op, left, right):
            left, right = canonicalize(left), canonicalize(right)
            if op in _MIRRORED:
                op, left, right = _MIRRORED[op], right, left
            elif op in (CmpOp.EQ, CmpOp.NE) and _sort_key(right) < _sort_key(left):
                left, right = right, left
            return Cmp(op, left, right)
        case And(args):
            return And(_canonical_args(args))
        case Or(args):
            return Or(_canonical_args(args))
        case Not(arg):
            return Not(canonicalize(arg))
        case Implies(antecedent, consequent):
            return Implies(canonicalize(antecedent), canonicalize(consequent))
        case Iff(left, right):
            parts = sorted((canonicalize(left), canonicalize(right)), key=_sort_key)
            return Iff(parts[0], parts[1])
        case InSet(arg, values):
            return InSet(canonicalize(arg), values)
        case _:
            raise TypeError(f"unknown AST node: {expr!r}")


def _canonical_args(args: tuple[BoolExpr, ...]) -> tuple[BoolExpr, ...]:
    """Canonicalize, deduplicate, and sort n-ary connective arguments."""
    canonical = {_sort_key(c): c for c in (canonicalize(arg) for arg in args)}
    return tuple(canonical[key] for key in sorted(canonical))


def stable_hash(expr: Expr) -> str:
    """A process-stable content hash of the canonicalized expression."""
    payload = json.dumps(expr_to_json(canonicalize(expr)), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Secret specs
# ---------------------------------------------------------------------------


def spec_to_json(spec: SecretSpec) -> dict[str, Any]:
    """Encode a secret declaration (exact round trip)."""
    return {
        "name": spec.name,
        "fields": [{"name": f.name, "lo": f.lo, "hi": f.hi} for f in spec.fields],
    }


def spec_from_json(data: dict[str, Any]) -> SecretSpec:
    """Decode a secret declaration encoded by :func:`spec_to_json`."""
    fields = tuple(
        FieldSpec(f["name"], int(f["lo"]), int(f["hi"])) for f in data["fields"]
    )
    return SecretSpec(data["name"], fields)


def spec_fingerprint(spec: SecretSpec) -> str:
    """A process-stable content hash of a secret declaration."""
    payload = json.dumps(spec_to_json(spec), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
