"""Tests for AInt and the interval domain A_I."""

import pytest

from repro.domains.base import DomainMismatch
from repro.domains.box import IntervalDomain
from repro.domains.interval import AInt
from repro.lang.ast import BoolLit
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box


@pytest.fixture
def spec():
    return SecretSpec.declare("S", x=(0, 9), y=(0, 9))


class TestAInt:
    def test_width(self):
        assert AInt(121, 279).width == 159

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AInt(3, 2)

    def test_contains(self):
        assert AInt(0, 5).contains(5)
        assert not AInt(0, 5).contains(6)

    def test_is_subset(self):
        assert AInt(2, 3).is_subset(AInt(0, 5))
        assert not AInt(0, 5).is_subset(AInt(2, 3))

    def test_intersect(self):
        assert AInt(0, 5).intersect(AInt(3, 9)) == AInt(3, 5)
        assert AInt(0, 1).intersect(AInt(3, 9)) is None

    def test_hull(self):
        assert AInt(0, 1).hull(AInt(5, 7)) == AInt(0, 7)

    def test_as_pair(self):
        assert AInt(1, 2).as_pair() == (1, 2)


class TestConstructors:
    def test_top_is_full_space(self, spec):
        top = IntervalDomain.top(spec)
        assert top.size() == 100
        assert top.box == Box(spec.bounds())

    def test_bottom_is_empty(self, spec):
        bottom = IntervalDomain.bottom(spec)
        assert bottom.size() == 0
        assert bottom.is_empty()

    def test_from_aints(self, spec):
        domain = IntervalDomain.from_aints(spec, [AInt(1, 3), AInt(4, 6)])
        assert domain.size() == 9
        assert domain.aints() == (AInt(1, 3), AInt(4, 6))

    def test_from_aints_arity_check(self, spec):
        with pytest.raises(ValueError, match="fields"):
            IntervalDomain.from_aints(spec, [AInt(1, 3)])

    def test_aints_of_bottom_raises(self, spec):
        with pytest.raises(ValueError):
            IntervalDomain.bottom(spec).aints()

    def test_out_of_bounds_box_rejected(self, spec):
        with pytest.raises(ValueError, match="global bounds"):
            IntervalDomain(spec, Box.make((0, 10), (0, 9)))

    def test_arity_mismatch_rejected(self, spec):
        with pytest.raises(ValueError, match="arity"):
            IntervalDomain(spec, Box.make((0, 9)))


class TestMethods:
    def test_contains(self, spec):
        domain = IntervalDomain(spec, Box.make((2, 4), (5, 7)))
        assert domain.contains((3, 6))
        assert not domain.contains((0, 6))

    def test_contains_validates_bounds(self, spec):
        domain = IntervalDomain.top(spec)
        with pytest.raises(ValueError):
            domain.contains((100, 0))

    def test_bottom_contains_nothing(self, spec):
        assert not IntervalDomain.bottom(spec).contains((0, 0))

    def test_subset(self, spec):
        small = IntervalDomain(spec, Box.make((2, 3), (2, 3)))
        big = IntervalDomain(spec, Box.make((0, 5), (0, 5)))
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_bottom_subset_of_all(self, spec):
        bottom = IntervalDomain.bottom(spec)
        assert bottom.is_subset(IntervalDomain.top(spec))
        assert bottom.is_subset(bottom)

    def test_nothing_nonempty_subset_of_bottom(self, spec):
        assert not IntervalDomain.top(spec).is_subset(IntervalDomain.bottom(spec))

    def test_intersect(self, spec):
        a = IntervalDomain(spec, Box.make((0, 5), (0, 5)))
        b = IntervalDomain(spec, Box.make((3, 9), (4, 9)))
        result = a.intersect(b)
        assert result.box == Box.make((3, 5), (4, 5))

    def test_intersect_disjoint_gives_bottom(self, spec):
        a = IntervalDomain(spec, Box.make((0, 1), (0, 1)))
        b = IntervalDomain(spec, Box.make((5, 9), (5, 9)))
        assert a.intersect(b).is_empty()

    def test_intersect_result_subset_of_both(self, spec):
        a = IntervalDomain(spec, Box.make((0, 5), (2, 8)))
        b = IntervalDomain(spec, Box.make((3, 9), (0, 5)))
        result = a.intersect(b)
        assert result.is_subset(a) and result.is_subset(b)

    def test_spec_mismatch(self, spec):
        other = SecretSpec.declare("Other", a=(0, 9), b=(0, 9))
        with pytest.raises(DomainMismatch):
            IntervalDomain.top(spec).intersect(IntervalDomain.top(other))

    def test_member_formula_semantics(self, spec):
        domain = IntervalDomain(spec, Box.make((2, 4), (5, 7)))
        formula = domain.member_formula()
        for point in Box(spec.bounds()).iter_points():
            env = dict(zip(spec.field_names, point))
            assert eval_bool(formula, env) == domain.contains(point)

    def test_bottom_member_formula_is_false(self, spec):
        assert IntervalDomain.bottom(spec).member_formula() == BoolLit(False)

    def test_boxes(self, spec):
        assert IntervalDomain.bottom(spec).boxes() == []
        assert len(IntervalDomain.top(spec).boxes()) == 1

    def test_repr(self, spec):
        assert "⊥" in repr(IntervalDomain.bottom(spec))
        assert "x∈[0,9]" in repr(IntervalDomain.top(spec))
