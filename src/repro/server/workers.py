"""The sharded worker tier: synthesis *and* warm-path serving, off the gateway.

Two kinds of work run in worker processes here, each sharded by a stable
content hash so per-process state stays hot:

* **Compiles** (:class:`ShardedCompilePool`) — synthesis jobs routed by
  the canonical query hash (:func:`~repro.lang.canonical.stable_hash` of
  the canonicalized AST).  Routing by content rather than round-robin
  means alpha-equivalent queries always land on the same shard, whose
  per-process :class:`SynthesisCache` and hash-consed kernel memos stay
  hot — the N-th tenant registering a reordered copy of a query compiles
  nothing even before the shared store sees the artifact.
* **Serving** (:class:`ServingShardPool`) — downgrade batches routed by
  :func:`serve_shard_of` over the durable *user id*, so every session of
  one user lands on the shard that owns that user's
  :class:`~repro.service.session.SessionManager` slice and
  :class:`~repro.server.ledger.PrivacyBudgetLedger` account.  Warm-path
  serving thereby executes inside shard processes (one Python runtime
  per shard, no gateway GIL contention) while ledger deltas flow back to
  the gateway for durable write-through.

Jobs cross the process boundary as JSON (the
:func:`~repro.service.serialize.options_to_json` /
:func:`~repro.service.serialize.compiled_query_to_json` /
:func:`~repro.service.serialize.downgrade_result_to_json` codecs), never
as pickles: the exact bytes a worker returns are the bytes the store
persists.

Admission control is per compile shard: each shard accepts a bounded
number of in-flight jobs and sheds the rest (:class:`ShardOverloaded`)
instead of queueing unboundedly — a loaded synthesis tier must fail
fast, not grow a latency cliff.  (Serving jobs are bounded upstream by
the gateway's ``max_queued_downgrades``.)

``inline=True`` replaces the process pools with synchronous in-process
execution of the *same* payload codec path; tests and coverage runs use
it, and single-core deployments may prefer it.

Failures at the process boundary are *typed* (see
:mod:`repro.server.supervise`): a dead worker surfaces as
:class:`~repro.server.supervise.ShardCrash`, an undecodable result as
:class:`~repro.server.supervise.CodecError` — never as a bare
``BaseException`` caught somewhere upstream.  Both pools support
:meth:`restart_shard` (replace a broken executor; in-flight futures
settle with ``BrokenProcessPool`` and release their admission slots) and
carry an optional :class:`~repro.server.faults.FaultPlan` inside job
payloads so the chaos suite can fault worker processes deterministically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.plugin import CompiledQuery, CompileOptions, QueryRegistry, compile_query
from repro.lang.ast import BoolExpr
from repro.lang.canonical import (
    canonicalize,
    expr_from_json,
    expr_to_json,
    spec_from_json,
    spec_to_json,
    stable_hash,
)
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import DowngradeInvariantError
from repro.monad.protected import ProtectedSecret
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import Span, span_id_for
from repro.server import faults
from repro.server.ledger import DecayPolicy, PrivacyBudgetLedger
from repro.server.supervise import CodecError, classify_failure
from repro.service.api import DowngradeResult
from repro.service.cache import SynthesisCache
from repro.service.serialize import (
    compiled_query_from_json,
    compiled_query_to_json,
    downgrade_result_from_json,
    downgrade_result_to_json,
    options_from_json,
    options_to_json,
    policy_from_json,
)
from repro.service.session import SessionManager

__all__ = [
    "ShardOverloaded",
    "ShardStats",
    "ShardedCompilePool",
    "ServingShardPool",
    "compile_payload",
    "ping_payload",
    "serve_payload",
    "shard_of",
    "serve_shard_of",
    "rounds_by_user",
    "result_kind",
]


class ShardOverloaded(RuntimeError):
    """Admission control refused a job: the shard's queue bound is full."""


def shard_of(query: BoolExpr, shards: int) -> int:
    """The shard a query routes to: canonical content hash mod shard count.

    Canonicalization first, so every alpha-equivalent spelling of a query
    (``a + b`` vs ``b + a``) routes to the same shard and reuses its warm
    memos.
    """
    return int(stable_hash(canonicalize(query))[:16], 16) % shards


def serve_shard_of(user_id: str, shards: int) -> int:
    """The serving shard that owns a user: stable text hash mod shard count.

    Hashes the durable *user* identity, not the session id, so every
    session (and reconnect) of one user lands where that user's ledger
    account and open sessions live — the locality the per-shard budget
    discipline depends on.  SHA-256, not ``hash()``: routing must agree
    across processes and interpreter restarts.
    """
    digest = hashlib.sha256(user_id.encode("utf-8")).hexdigest()
    return int(digest[:16], 16) % shards


def result_kind(result: DowngradeResult) -> str:
    """The machine-readable outcome class of one downgrade result.

    Derived from the result alone (not the internal decision object), so
    the shard path, the gateway-local path, and a replay twin all label
    the same result identically — the property the trace-tree bit-identity
    contract rests on.  Mirrors
    :class:`~repro.monad.anosy.DowngradeDecision` ``kind`` values, plus
    ``"budget"`` (ledger admission) and ``"unknown_session"`` (facade
    refusal), which never reach the session layer.
    """
    if result.authorized:
        return "ok"
    reason = result.reason
    if reason.startswith("Can't downgrade"):
        return "unknown_query"
    if reason.startswith("Policy Violation"):
        return "policy"
    if reason.startswith("no open session"):
        return "unknown_session"
    if reason.startswith("budget exhausted"):
        return "budget"
    if ", secret is " in reason:
        return "spec_mismatch"
    return "refused"


def rounds_by_user(
    ids: Iterable[str], users: dict[str, str]
) -> list[list[str]]:
    """Partition session ids into rounds that never repeat a ledger user.

    When one user has several sessions in a batch, serving them in a
    single pass would preauthorize all of them against the *same* bound
    and then commit sequentially — the second commit could cross the
    floor mid-batch.  Round-partitioning makes every commit immediately
    follow the admission check it was granted under.
    """
    rounds: list[list[str]] = []
    placed: list[set[str]] = []
    for sid in ids:
        user = users.get(sid, sid)
        for round_ids, round_users in zip(rounds, placed):
            if user not in round_users:
                round_ids.append(sid)
                round_users.add(user)
                break
        else:
            rounds.append([sid])
            placed.append({user})
    return rounds


# ---------------------------------------------------------------------------
# The worker entry point (runs inside shard processes)
# ---------------------------------------------------------------------------

#: Per-process artifact cache: repeated jobs on one shard skip synthesis
#: entirely even before the shared store sees the artifact.
_PROCESS_CACHE: SynthesisCache | None = None


def _process_cache() -> SynthesisCache:
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = SynthesisCache()
    return _PROCESS_CACHE


def compile_payload(payload: str) -> str:
    """Compile one JSON job; the module-level entry point shard processes run.

    The result carries the full artifact encoding plus worker-side
    provenance (pid, whether the shard's local cache already had it).
    Compiles are pure and content-addressed, so the fault hooks here are
    trivially retry-safe: re-running a job (or running it twice, under a
    ``duplicate_delivery`` fault) yields the identical artifact.
    """
    data = json.loads(payload)
    faults.install_from_payload(data.get("faults"))
    faults.maybe_crash("compile", "crash_before_result")
    faults.maybe_delay("compile")
    query = expr_from_json(data["query"])
    secret = spec_from_json(data["secret"])
    options = options_from_json(data["options"])
    cache = _process_cache()
    hits_before = cache.stats.hits
    compiled = compile_query(data["name"], query, secret, options, cache=cache)
    if faults.should_duplicate("compile"):
        # At-least-once delivery: the second run must be a cache hit and
        # produce the same artifact.
        compiled = compile_query(data["name"], query, secret, options, cache=cache)
    faults.maybe_crash("compile", "crash_after_commit")
    result = json.dumps(
        {
            "artifact": compiled_query_to_json(compiled),
            "pid": os.getpid(),
            "shard_cache_hit": cache.stats.hits > hits_before,
        }
    )
    return faults.maybe_corrupt("compile", result)


def ping_payload(payload: str) -> str:
    """Heartbeat entry point: proves the worker process is alive.

    Deliberately does no work and fires no faults — a ping measures the
    process, not the job pipeline.
    """
    del payload
    return json.dumps({"pid": os.getpid()})


# ---------------------------------------------------------------------------
# The serving-shard entry point (runs inside serving-shard processes)
# ---------------------------------------------------------------------------


class _ServingShard:
    """One shard's slice of the serving state (lives in a shard process).

    Owns a :class:`~repro.service.session.SessionManager` for the
    sessions routed here and a local
    :class:`~repro.server.ledger.PrivacyBudgetLedger` for the users this
    shard owns.  The local ledger is *enforcement* state; durability is
    the gateway's job — committed bounds travel back as deltas
    (:meth:`~repro.server.ledger.PrivacyBudgetLedger.export_bound`
    payloads) and the gateway writes them through its store-attached
    mirror.
    """

    def __init__(self, data: dict[str, Any]):
        policy = policy_from_json(data["policy"])
        floor = data.get("floor")
        decay = data.get("decay")
        #: Process-local telemetry: a real registry when the gateway's
        #: ``configure`` op asked for observation, else the null registry.
        #: Drained counters/spans ride home on every batch response
        #: (``obs`` piggyback) and fold into the gateway's hub.
        self.metrics: Any = (
            MetricsRegistry() if data.get("observe") else NULL_REGISTRY
        )
        #: Spans finished since the last piggyback drain.
        self.spans: list[Span] = []
        self.manager = SessionManager(
            registry=QueryRegistry(),
            policy=policy,
            mode=data["mode"],
            check_both=data["check_both"],
            metrics=self.metrics,
        )
        self.ledger = (
            None
            if floor is None
            else PrivacyBudgetLedger(
                policy_from_json(floor),
                decay=None if decay is None else DecayPolicy.from_json(decay),
            )
        )
        if self.ledger is not None:
            self.ledger.metrics = self.metrics
        #: Session id → durable user id (the routing key).
        self.users: dict[str, str] = {}

    # -- ops ----------------------------------------------------------------
    def attach_query(self, op: dict[str, Any]) -> None:
        """Register a gateway-shipped compiled artifact (idempotent)."""
        if self.manager.registry.lookup(op["name"]) is None:
            self.manager.registry.register(
                compiled_query_from_json(op["artifact"])
            )

    def open_session(self, op: dict[str, Any]) -> None:
        """Open a session, restoring the user's persisted bounds if new.

        ``bounds`` carries the gateway mirror's durable payloads; they
        are applied only when this shard has not seen the user yet, so a
        live shard's fresher in-process bounds are never clobbered by a
        stale snapshot taken at ``open_session`` time.
        """
        session_id, user_id = op["session_id"], op["user_id"]
        spec = spec_from_json(op["spec"])
        secret = ProtectedSecret.seal(spec, tuple(op["value"]))
        self.manager.open_session(session_id, secret)
        self.users[session_id] = user_id
        bounds = op.get("bounds")
        if bounds and self.ledger is not None and user_id not in self.ledger.users():
            for spec_name, payload in bounds.items():
                self.ledger.apply_payload(user_id, spec_name, payload)

    def close_session(self, op: dict[str, Any]) -> None:
        """Close a session; the user's ledger account stays (budgets do)."""
        self.manager.close_session(op["session_id"])
        self.users.pop(op["session_id"], None)

    def advance_epoch(self, op: dict[str, Any]) -> None:
        """Apply epoch decay to this shard's local ledger."""
        if self.ledger is not None and self.ledger.decay is not None:
            self.ledger.advance_epoch(int(op.get("epochs", 1)))

    def serve_batch(
        self,
        query_name: str,
        session_ids: list[str],
        traces: dict[str, Any] | None = None,
    ) -> tuple[list[DowngradeResult], list[dict[str, Any]], int]:
        """One query for this shard's slice of a tick.

        Ledger admission, batched session downgrades, and commits all
        run shard-locally under the round-per-user discipline
        (:func:`rounds_by_user`).  Returns results in request order, the
        ledger-delta payloads for every (user, spec) committed, and the
        number of budget refusals.  ``traces`` (session id →
        ``{"trace_id", "parent"}``) names the trace each session's
        decision spans belong to; spans buffer on :attr:`spans` for the
        response piggyback.
        """
        ids = list(dict.fromkeys(session_ids))
        compiled = self.manager.registry.lookup(query_name)
        results: dict[str, DowngradeResult] = {}
        touched: dict[tuple[str, str], SecretSpec] = {}
        refusals = 0
        for round_ids in rounds_by_user(ids, self.users):
            refusals += self._serve_round(
                query_name, compiled, round_ids, results, touched, traces
            )
        deltas = [
            {
                "user_id": user_id,
                "spec_name": spec_name,
                "payload": self.ledger.export_bound(user_id, spec),
            }
            for (user_id, spec_name), spec in touched.items()
            if self.ledger is not None
        ]
        return [results[sid] for sid in ids], deltas, refusals

    def _span(
        self,
        sid: str,
        traces: dict[str, Any] | None,
        name: str,
        **attrs: Any,
    ) -> None:
        """Buffer one decision span for a traced session (else no-op).

        Span attributes here carry only secret-independent facts: under
        the pair-checked discipline (``check_both=True``) admission
        ``allowed`` and serve ``authorized``/``kind`` are decided on both
        potential posteriors, never on the response.
        """
        info = None if traces is None else traces.get(sid)
        if info is None:
            return
        trace_id = info["trace_id"]
        parent = info.get("parent")
        self.spans.append(
            Span(
                trace_id=trace_id,
                span_id=span_id_for(trace_id, parent, name, 0),
                parent_id=parent,
                name=name,
                attrs=attrs,
            )
        )

    def _serve_round(
        self,
        query_name: str,
        compiled: CompiledQuery | None,
        ids: list[str],
        results: dict[str, DowngradeResult],
        touched: dict[tuple[str, str], SecretSpec],
        traces: dict[str, Any] | None = None,
    ) -> int:
        refusals = 0
        admitted: list[str] = []
        present: list[str] = []
        for sid in ids:
            if sid not in self.manager.sessions:
                results[sid] = DowngradeResult(
                    session_id=sid,
                    query_name=query_name,
                    authorized=False,
                    response=None,
                    reason=f"no open session {sid!r}",
                    knowledge_size=None,
                )
                self._span(
                    sid, traces, "serve", authorized=False, kind="unknown_session"
                )
            else:
                present.append(sid)
        if self.ledger is None or compiled is None:
            admitted = present
        elif present:
            # One batched admission pass: the floor is checked once per
            # distinct sound bound instead of once per session.
            users = {sid: self.users.get(sid, sid) for sid in present}
            ledger_decisions = self.ledger.preauthorize_batch(
                users.values(), compiled.qinfo, mode=self.manager.mode
            )
            for sid in present:
                decision = ledger_decisions[users[sid]]
                self._span(sid, traces, "admission", allowed=decision.allowed)
                if decision.allowed:
                    admitted.append(sid)
                else:
                    refusals += 1
                    results[sid] = DowngradeResult(
                        session_id=sid,
                        query_name=query_name,
                        authorized=False,
                        response=None,
                        reason=decision.reason,
                        knowledge_size=decision.remaining,
                    )
        if not admitted:
            return refusals
        # Chaos kill point: the shard has admitted (preauthorized) but not
        # yet committed — a crash here must not charge anyone.
        faults.maybe_crash("serve.round", "crash_before_result")
        for sid, decision in self.manager.downgrade_batch(
            query_name, admitted
        ).items():
            session = self.manager.sessions.get(sid)
            results[sid] = DowngradeResult(
                session_id=sid,
                query_name=query_name,
                authorized=decision.authorized,
                response=decision.response,
                reason=decision.reason,
                knowledge_size=session.knowledge_size() if session else None,
            )
            self._span(
                sid,
                traces,
                "serve",
                authorized=decision.authorized,
                kind=result_kind(results[sid]),
            )
            if decision.authorized and self.ledger is not None and compiled:
                if decision.response is None:
                    raise DowngradeInvariantError(
                        f"authorized downgrade of {query_name!r} for {sid!r} "
                        "carries no response"
                    )
                user_id = self.users.get(sid, sid)
                self.ledger.commit(
                    user_id,
                    compiled.qinfo,
                    decision.response,
                    mode=self.manager.mode,
                )
                touched[(user_id, compiled.qinfo.secret.name)] = compiled.qinfo.secret
        # Chaos kill point: shard-local commits happened, but the deltas
        # have not reached the gateway mirror — they die with the process.
        faults.maybe_crash("serve.round", "crash_after_commit")
        return refusals


#: Per-process serving state, keyed by ``"<pool>/<shard>"``.  In a real
#: shard process exactly one key is ever populated; inline mode (tests,
#: single-core) holds every shard's state in the gateway process, and the
#: pool-id prefix keeps two inline pools in one process from colliding.
_SERVING_STATE: dict[str, _ServingShard] = {}


def serve_payload(payload: str) -> str:
    """Execute one JSON op sequence; the serving-shard process entry point.

    Ops arrive in gateway order — ``configure`` / ``attach_query`` /
    ``open_session`` / ``close_session`` / ``advance_epoch`` /
    ``downgrade_batch`` — and the response carries the encoded results
    of every ``downgrade_batch`` op, the ledger deltas to persist, the
    budget-refusal count, and worker provenance (pid).
    """
    data = json.loads(payload)
    faults.install_from_payload(data.get("faults"))
    faults.maybe_crash("serve", "crash_before_result")
    faults.maybe_delay("serve")
    shard_key = data["shard"]
    downgrades: list[dict[str, Any]] = []
    outputs: list[tuple[list[DowngradeResult], list[dict[str, Any]], int]] = []
    for op in data["ops"]:
        kind = op["op"]
        if kind == "configure":
            if shard_key not in _SERVING_STATE:
                _SERVING_STATE[shard_key] = _ServingShard(op)
            continue
        shard = _SERVING_STATE[shard_key]
        if kind == "attach_query":
            shard.attach_query(op)
        elif kind == "open_session":
            shard.open_session(op)
        elif kind == "close_session":
            shard.close_session(op)
        elif kind == "advance_epoch":
            shard.advance_epoch(op)
        elif kind == "downgrade_batch":
            downgrades.append(op)
            outputs.append(
                shard.serve_batch(
                    op["query_name"], op["session_ids"], op.get("traces")
                )
            )
        else:
            raise ValueError(f"unknown serving op {kind!r}")
    if downgrades and faults.should_duplicate("serve"):
        # At-least-once delivery: re-execute every answer-bearing op and
        # discard the re-run's outputs — the first delivery's response is
        # authoritative.  Lifecycle ops are not re-run (they are not
        # idempotent and, in gateway-built payloads, always precede the
        # downgrades).  The re-run either re-commits the same bounds
        # (idempotent intersections) or is refused by admission because
        # the first run already charged them; the ledger lands in the
        # same state either way.
        shard = _SERVING_STATE[shard_key]
        # The re-run's spans carry the same deterministic ids as the
        # first delivery's; keeping them would double every child in the
        # absorbed trace tree, so they are discarded with the outputs.
        span_mark = len(shard.spans)
        for op in downgrades:
            shard.serve_batch(op["query_name"], op["session_ids"])
        del shard.spans[span_mark:]
    faults.maybe_crash("serve", "crash_after_commit")
    results: list[dict[str, Any]] = []
    deltas: list[dict[str, Any]] = []
    refusals = 0
    for batch_results, batch_deltas, batch_refusals in outputs:
        results.extend(downgrade_result_to_json(result) for result in batch_results)
        deltas.extend(batch_deltas)
        refusals += batch_refusals
    body: dict[str, Any] = {
        "results": results,
        "deltas": deltas,
        "budget_refusals": refusals,
        "pid": os.getpid(),
    }
    shard = _SERVING_STATE.get(shard_key)
    if shard is not None and (shard.metrics or shard.spans):
        obs: dict[str, Any] = {}
        if shard.metrics:
            obs["metrics"] = shard.metrics.drain()
        if shard.spans:
            obs["spans"] = [span.to_json() for span in shard.spans]
            shard.spans = []
        body["obs"] = obs
    response = json.dumps(body)
    return faults.maybe_corrupt("serve", response)


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


@dataclass
class ShardStats:
    """Counters for one shard.

    ``shed`` counts admission refusals (the queue bound did its job);
    ``failed`` counts jobs the executor rejected *after* admission — the
    slot is released either way, so ``pending`` always returns to zero.
    """

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    pending: int = 0
    failed: int = 0


def _kill_executor(executor: ProcessPoolExecutor | None) -> None:
    """Abruptly tear down one shard executor (possibly hung).

    Kills the worker processes first — a hung synthesis job cannot block
    shutdown — which settles every in-flight future with
    ``BrokenProcessPool``; their done-callbacks then release admission
    slots through the normal path.
    """
    if executor is None:
        return
    for process in list(getattr(executor, "_processes", {}).values()):
        process.kill()
    executor.shutdown(wait=False)


class ShardedCompilePool:
    """A fixed set of single-process shards, routed by canonical query hash.

    Each shard is a one-worker :class:`ProcessPoolExecutor`: a shard is a
    *unit of memo locality*, not a thread pool — widening a shard would
    split its warm cache.  Scale by adding shards.
    """

    def __init__(
        self, shards: int = 1, *, max_pending: int = 8, inline: bool = False
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.shards = shards
        self.max_pending = max_pending
        self.inline = inline
        #: Optional chaos schedule, shipped inside every job payload.
        self.fault_plan: faults.FaultPlan | None = None
        #: Settable metrics registry (``repro.obs``); the gateway swaps
        #: in its hub's registry to see admissions and sheds.
        self.metrics: Any = NULL_REGISTRY
        self._executors: list[ProcessPoolExecutor | None] = [None] * shards
        self._stats = [ShardStats() for _ in range(shards)]
        self._lock = threading.Lock()

    # -- routing -----------------------------------------------------------
    def shard_for(self, query: BoolExpr | str) -> int:
        """The shard a query routes to (parses text queries first)."""
        if isinstance(query, str):
            query = parse_bool(query)
        return shard_of(query, self.shards)

    # -- submission ---------------------------------------------------------
    def payload_for(
        self,
        name: str,
        query: BoolExpr | str,
        secret: SecretSpec,
        options: CompileOptions,
        *,
        with_faults: bool = True,
    ) -> str:
        """Encode one compile job as payload JSON.

        ``with_faults=False`` builds a clean payload for degraded inline
        execution in the gateway process — a ``process``-mode crash fault
        must never fire there.
        """
        if isinstance(query, str):
            query = parse_bool(query)
        payload: dict[str, Any] = {
            "name": name,
            "query": expr_to_json(query),
            "secret": spec_to_json(secret),
            "options": options_to_json(options),
        }
        if with_faults:
            fragment = faults.encode_for_payload(self.fault_plan, simulate=self.inline)
            if fragment is not None:
                payload["faults"] = fragment
        return json.dumps(payload)

    def submit(
        self,
        name: str,
        query: BoolExpr | str,
        secret: SecretSpec,
        options: CompileOptions,
    ) -> Future:
        """Route a compile job to its shard; the future yields result JSON.

        Raises :class:`ShardOverloaded` (without queueing anything) when
        the shard already has ``max_pending`` jobs in flight.  Any other
        submit-time failure releases the admission slot it reserved —
        a broken executor must not eat the shard's capacity.
        """
        if isinstance(query, str):
            query = parse_bool(query)
        shard = self.shard_for(query)
        self._reserve(shard)
        try:
            payload = self.payload_for(name, query, secret, options)
            if self.inline:
                future: Future = Future()
                future.add_done_callback(lambda _f: self._release(shard))
                try:
                    future.set_result(compile_payload(payload))
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    future.set_exception(
                        classify_failure(exc, shard=shard, site="compile")
                    )
            else:
                future = self._executor(shard).submit(compile_payload, payload)
                future.add_done_callback(lambda _f: self._release(shard))
            return future
        except BaseException:
            self._release_failed(shard)
            raise

    @staticmethod
    def decode(result_json: str) -> tuple[CompiledQuery, dict]:
        """Decode a worker result into the artifact plus its provenance.

        An unparseable or structurally wrong result raises
        :class:`~repro.server.supervise.CodecError` — the supervisor
        treats it as a transient shard failure and retries.
        """
        try:
            data = json.loads(result_json)
            return compiled_query_from_json(data["artifact"]), {
                "pid": data["pid"],
                "shard_cache_hit": data["shard_cache_hit"],
            }
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CodecError(
                f"undecodable compile result: {exc}", site="compile"
            ) from exc

    # -- admission bookkeeping ----------------------------------------------
    def _reserve(self, shard: int) -> None:
        with self._lock:
            stats = self._stats[shard]
            if stats.pending >= self.max_pending:
                stats.shed += 1
                self._count_admission(shard, "shed")
                raise ShardOverloaded(
                    f"shard {shard}: {stats.pending} jobs in flight "
                    f">= bound {self.max_pending}"
                )
            stats.pending += 1
            stats.submitted += 1
            self._count_admission(shard, "admitted")

    def _count_admission(self, shard: int, outcome: str) -> None:
        if self.metrics:
            self.metrics.counter(
                "anosy_compile_admission_total",
                "Compile-shard admission outcomes.",
                labels=("shard", "outcome"),
            ).labels(shard=str(shard), outcome=outcome).inc()

    def _release(self, shard: int) -> None:
        with self._lock:
            self._stats[shard].pending -= 1
            self._stats[shard].completed += 1

    def _release_failed(self, shard: int) -> None:
        # Submit-time failure: the job never reached a worker, so the
        # reserved slot is returned without counting a completion.
        with self._lock:
            self._stats[shard].pending -= 1
            self._stats[shard].failed += 1

    def _executor(self, shard: int) -> ProcessPoolExecutor:
        # Lazy: shards that never receive work never fork a process.
        with self._lock:
            executor = self._executors[shard]
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=1)
                self._executors[shard] = executor
            return executor

    # -- supervision ---------------------------------------------------------
    def restart_shard(self, shard: int) -> None:
        """Replace a (possibly broken or hung) shard executor.

        The old worker is killed, which settles its in-flight futures
        with ``BrokenProcessPool`` and releases their admission slots;
        the next submit lazily forks a fresh process.  Compile shards
        hold no authoritative state — only warm memos — so there is
        nothing to rehydrate.  Inline pools have no process to replace.
        """
        with self._lock:
            executor = self._executors[shard]
            self._executors[shard] = None
        _kill_executor(executor)

    def ping(self, shard: int, *, timeout: float = 5.0) -> bool:
        """Heartbeat a shard: False means its worker is dead or hung."""
        if self.inline:
            return True
        try:
            self._executor(shard).submit(ping_payload, "{}").result(timeout=timeout)
            return True
        except Exception:
            return False

    # -- introspection -------------------------------------------------------
    def stats(self) -> list[ShardStats]:
        """A snapshot of per-shard counters."""
        with self._lock:
            return [ShardStats(**vars(stats)) for stats in self._stats]

    def total_submitted(self) -> int:
        """Jobs ever admitted across all shards (compiles actually run)."""
        with self._lock:
            return sum(stats.submitted for stats in self._stats)

    def total_shed(self) -> int:
        """Jobs refused by admission control across all shards."""
        with self._lock:
            return sum(stats.shed for stats in self._stats)

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self, *, wait: bool = True) -> None:
        """Tear down every shard process (idempotent)."""
        with self._lock:
            executors = [ex for ex in self._executors if ex is not None]
            self._executors = [None] * self.shards
        for executor in executors:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "ShardedCompilePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


#: Distinguishes inline pools sharing one process (see ``_SERVING_STATE``).
_POOL_IDS = itertools.count()


class ServingShardPool:
    """A fixed set of single-process serving shards, routed by user id.

    Each shard is a one-worker :class:`ProcessPoolExecutor` that owns the
    sessions and ledger accounts of the users routed to it
    (:func:`serve_shard_of`).  The gateway talks to a shard through
    ordered JSON op batches (:func:`serve_payload`); because every shard
    has exactly one worker process, ops submitted in order execute in
    order — session opens always precede the downgrades that use them.

    ``inline=True`` executes the same payload codec path synchronously in
    the calling process (tests, single-core deployments).
    """

    def __init__(self, shards: int = 1, *, inline: bool = False):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.inline = inline
        #: Optional chaos schedule, shipped inside every job payload.
        self.fault_plan: faults.FaultPlan | None = None
        self._pool_id = next(_POOL_IDS)
        self._executors: list[ProcessPoolExecutor | None] = [None] * shards
        self._lock = threading.Lock()

    # -- routing -----------------------------------------------------------
    def shard_for(self, user_id: str) -> int:
        """The shard that owns a user's sessions and ledger account."""
        return serve_shard_of(user_id, self.shards)

    # -- submission ---------------------------------------------------------
    def submit(self, shard: int, ops: list[dict[str, Any]]) -> Future:
        """Ship an ordered op batch to a shard; the future yields result JSON.

        Serving jobs are bounded upstream by the gateway's downgrade
        queue, so there is no per-shard admission control here.
        """
        body: dict[str, Any] = {"shard": f"{self._pool_id}/{shard}", "ops": ops}
        fragment = faults.encode_for_payload(self.fault_plan, simulate=self.inline)
        if fragment is not None:
            body["faults"] = fragment
        payload = json.dumps(body)
        if self.inline:
            future: Future = Future()
            try:
                future.set_result(serve_payload(payload))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                future.set_exception(
                    classify_failure(exc, shard=shard, site="serve")
                )
            return future
        return self._executor(shard).submit(serve_payload, payload)

    @staticmethod
    def decode(result_json: str) -> dict[str, Any]:
        """Decode a shard response: results, ledger deltas, refusals, pid.

        An unparseable or structurally wrong response raises
        :class:`~repro.server.supervise.CodecError` — the supervisor
        treats it as a transient shard failure, restarts the shard, and
        retries.
        """
        try:
            data = json.loads(result_json)
            return {
                "results": [
                    downgrade_result_from_json(encoded)
                    for encoded in data["results"]
                ],
                "deltas": data["deltas"],
                "budget_refusals": data["budget_refusals"],
                "pid": data["pid"],
                "obs": data.get("obs"),
            }
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CodecError(
                f"undecodable serving response: {exc}", site="serve"
            ) from exc

    def _executor(self, shard: int) -> ProcessPoolExecutor:
        # Lazy: shards that never receive work never fork a process.
        with self._lock:
            executor = self._executors[shard]
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=1)
                self._executors[shard] = executor
            return executor

    # -- supervision ---------------------------------------------------------
    def restart_shard(self, shard: int) -> None:
        """Kill a serving shard's state; the replacement starts empty.

        In process mode the worker is killed (in-flight futures settle
        with ``BrokenProcessPool``) and the next submit forks afresh; in
        inline mode the shard's in-process state is dropped — the inline
        analogue of process death.  Either way the replacement knows
        *nothing*: the gateway must rehydrate it (configure, re-attach
        queries, re-open sessions with mirror bounds) before serving.
        A forced-empty replacement is what makes restart safe — a fresh
        shard accepts every mirror bound snapshot, so degraded-mode
        commits made while it was down can never be clobbered by stale
        in-process state.
        """
        with self._lock:
            executor = self._executors[shard]
            self._executors[shard] = None
        if self.inline:
            _SERVING_STATE.pop(f"{self._pool_id}/{shard}", None)
        _kill_executor(executor)

    def ping(self, shard: int, *, timeout: float = 5.0) -> bool:
        """Heartbeat a shard: False means its worker is dead or hung."""
        if self.inline:
            return True
        try:
            self._executor(shard).submit(ping_payload, "{}").result(timeout=timeout)
            return True
        except Exception:
            return False

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self, *, wait: bool = True) -> None:
        """Tear down every shard process (idempotent).

        Shard-local serving state dies with the processes; anything that
        must survive (ledger bounds, artifacts) already flowed back to
        the gateway as deltas and was written through to the store.
        """
        with self._lock:
            executors = [ex for ex in self._executors if ex is not None]
            self._executors = [None] * self.shards
        for executor in executors:
            executor.shutdown(wait=wait)
        if self.inline:
            prefix = f"{self._pool_id}/"
            for key in [k for k in _SERVING_STATE if k.startswith(prefix)]:
                del _SERVING_STATE[key]

    def __enter__(self) -> "ServingShardPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
