"""ANOSY's core contribution: verified knowledge synthesis.

``compile_query`` runs the paper's four-step pipeline (refinement specs →
sketch → SMT-style synthesis → machine-checked verification) and produces
a :class:`~repro.core.qinfo.QInfo` whose posterior functions are free at
run time.
"""

from repro.core.itersynth import IterSynthResult, iter_synth_powerset
from repro.core.kary import KaryCompiledQuery, KaryQInfo, compile_kary_query
from repro.core.plugin import (
    CompiledQuery,
    CompileOptions,
    ModeReport,
    QueryRegistry,
    compile_query,
)
from repro.core.qinfo import DomainPair, QInfo, intersect_knowledge
from repro.core.sketch import Hole, IndsetSketch, fill, make_indset_sketch
from repro.core.synth import SynthOptions, SynthResult, synth_interval

__all__ = [
    "KaryCompiledQuery",
    "KaryQInfo",
    "compile_kary_query",
    "IterSynthResult",
    "iter_synth_powerset",
    "CompiledQuery",
    "CompileOptions",
    "ModeReport",
    "QueryRegistry",
    "compile_query",
    "DomainPair",
    "QInfo",
    "intersect_knowledge",
    "Hole",
    "IndsetSketch",
    "fill",
    "make_indset_sketch",
    "SynthOptions",
    "SynthResult",
    "synth_interval",
]
