"""The synthesis cache: hit/miss accounting, key stability, warm starts."""

import pytest

from repro.core.plugin import CompileOptions, QueryRegistry, compile_query
from repro.core.synth import SynthOptions
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.service.cache import SynthesisCache, cache_key

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
QUERY = "x + y <= 10"
REORDERED = "y + x <= 10"


class TestCacheKey:
    def test_alpha_equivalent_reorderings_share_a_key(self):
        options = CompileOptions()
        assert cache_key(parse_bool(QUERY), SPEC, options) == cache_key(
            parse_bool(REORDERED), SPEC, options
        )

    def test_conjunct_order_is_canonicalized(self):
        options = CompileOptions()
        assert cache_key(parse_bool("x <= 5 and y >= 3"), SPEC, options) == cache_key(
            parse_bool("y >= 3 and x <= 5"), SPEC, options
        )

    def test_mode_order_is_presentational(self):
        assert cache_key(
            parse_bool(QUERY), SPEC, CompileOptions(modes=("under", "over"))
        ) == cache_key(parse_bool(QUERY), SPEC, CompileOptions(modes=("over", "under")))

    def test_distinct_queries_get_distinct_keys(self):
        options = CompileOptions()
        assert cache_key(parse_bool(QUERY), SPEC, options) != cache_key(
            parse_bool("x + y <= 11"), SPEC, options
        )

    @pytest.mark.parametrize(
        "options",
        [
            CompileOptions(domain="powerset"),
            CompileOptions(k=5, domain="powerset"),
            CompileOptions(modes=("under",)),
            CompileOptions(verify=False),
            CompileOptions(synth=SynthOptions(time_budget=1.0)),
        ],
    )
    def test_options_participate_in_the_key(self, options):
        assert cache_key(parse_bool(QUERY), SPEC, options) != cache_key(
            parse_bool(QUERY), SPEC, CompileOptions()
        )

    def test_secret_bounds_participate_in_the_key(self):
        other = SecretSpec.declare("S", x=(0, 19), y=(0, 29))
        options = CompileOptions()
        assert cache_key(parse_bool(QUERY), SPEC, options) != cache_key(
            parse_bool(QUERY), other, options
        )


class TestHitMissAccounting:
    def test_counters(self):
        cache = SynthesisCache()
        assert cache.stats.requests == 0
        compile_query("a", QUERY, SPEC, cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        compile_query("b", QUERY, SPEC, cache=cache)
        compile_query("c", REORDERED, SPEC, cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (2, 1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert len(cache) == 1

    def test_hit_relabels_the_artifact(self):
        cache = SynthesisCache()
        cold = compile_query("cold", QUERY, SPEC, cache=cache)
        hit = compile_query("hot", REORDERED, SPEC, cache=cache)
        assert hit.name == "hot"
        assert hit.qinfo.query == parse_bool(REORDERED)
        assert hit.qinfo.under_indset == cold.qinfo.under_indset
        assert hit.qinfo.over_indset == cold.qinfo.over_indset
        assert hit.reports == cold.reports

    def test_cached_entry_isolated_from_caller_mutation(self):
        cache = SynthesisCache()
        compile_query("a", QUERY, SPEC, cache=cache)
        hit = compile_query("b", QUERY, SPEC, cache=cache)
        hit.reports.pop("under")
        fresh = compile_query("c", QUERY, SPEC, cache=cache)
        assert set(fresh.reports) == {"under", "over"}

    def test_different_options_miss(self):
        cache = SynthesisCache()
        compile_query("a", QUERY, SPEC, cache=cache)
        compile_query("b", QUERY, SPEC, CompileOptions(modes=("under",)), cache=cache)
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_no_cache_means_no_accounting(self):
        compiled = compile_query("a", QUERY, SPEC)
        assert compiled.reports["under"].verified

    def test_clear_resets_everything(self):
        cache = SynthesisCache()
        compile_query("a", QUERY, SPEC, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0


class TestRegistryIntegration:
    def test_registry_shares_its_cache_across_registrations(self):
        cache = SynthesisCache()
        registry = QueryRegistry(cache=cache)
        registry.compile_and_register("a", QUERY, SPEC)
        registry.compile_and_register("b", REORDERED, SPEC)
        assert cache.stats.hits == 1
        assert registry.names() == ["a", "b"]
        assert (
            registry.lookup("a").qinfo.under_indset
            == registry.lookup("b").qinfo.under_indset
        )


class TestWarmStart:
    def test_json_round_trip(self):
        cache = SynthesisCache()
        compile_query("a", QUERY, SPEC, cache=cache)
        restored = SynthesisCache.from_json(cache.to_json())
        assert len(restored) == 1
        assert set(restored.keys()) == set(cache.keys())

    def test_file_round_trip_then_hit(self, tmp_path):
        cache = SynthesisCache()
        cold = compile_query("a", QUERY, SPEC, cache=cache)
        path = tmp_path / "cache.json"
        cache.save(path)

        warmed = SynthesisCache.load(path)
        hit = compile_query("b", REORDERED, SPEC, cache=warmed)
        assert warmed.stats.hits == 1
        assert hit.qinfo.under_indset == cold.qinfo.under_indset
        assert all(report.verified for report in hit.reports.values())

    def test_warm_started_posteriors_match_cold(self):
        cache = SynthesisCache()
        cold = compile_query("a", QUERY, SPEC, cache=cache)
        warmed = SynthesisCache.from_json(cache.to_json())
        hot = compile_query("a2", QUERY, SPEC, cache=warmed)

        from repro.domains.box import IntervalDomain

        prior = IntervalDomain.top(SPEC)
        assert cold.qinfo.approx(prior) == hot.qinfo.approx(prior)

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError, match="version"):
            SynthesisCache.from_json({"version": 999, "entries": {}})
