"""Tests for label lattices and the mini-LIO runtime."""

import pytest

from repro.monad.labels import PUBLIC, SECRET, ReaderSet, level_chain
from repro.monad.secure import IFCViolation, Labeled, SecureRuntime


class TestLevelLattice:
    def test_ordering(self):
        assert PUBLIC.can_flow_to(SECRET)
        assert not SECRET.can_flow_to(PUBLIC)
        assert PUBLIC.can_flow_to(PUBLIC)

    def test_join_meet(self):
        assert PUBLIC.join(SECRET) == SECRET
        assert PUBLIC.meet(SECRET) == PUBLIC

    def test_chain(self):
        low, mid, high = level_chain("LOW", "MID", "HIGH")
        assert low.can_flow_to(mid) and mid.can_flow_to(high)
        assert low.join(high) == high

    def test_cross_lattice_rejected(self):
        with pytest.raises(TypeError):
            PUBLIC.join(ReaderSet.anyone())


class TestReaderSetLattice:
    def test_public_flows_anywhere(self):
        assert ReaderSet.anyone().can_flow_to(ReaderSet.only("alice"))

    def test_secret_cannot_become_public(self):
        assert not ReaderSet.only("alice").can_flow_to(ReaderSet.anyone())

    def test_fewer_readers_is_more_secret(self):
        ab = ReaderSet.only("alice", "bob")
        a = ReaderSet.only("alice")
        assert ab.can_flow_to(a)
        assert not a.can_flow_to(ab)

    def test_join_intersects_readers(self):
        ab = ReaderSet.only("alice", "bob")
        bc = ReaderSet.only("bob", "carol")
        assert ab.join(bc) == ReaderSet.only("bob")

    def test_meet_unions_readers(self):
        a = ReaderSet.only("alice")
        b = ReaderSet.only("bob")
        assert a.meet(b) == ReaderSet.only("alice", "bob")

    def test_lattice_laws_on_samples(self):
        samples = [
            ReaderSet.anyone(),
            ReaderSet.only("a"),
            ReaderSet.only("a", "b"),
            ReaderSet.only("b"),
        ]
        for x in samples:
            for y in samples:
                join = x.join(y)
                assert x.can_flow_to(join) and y.can_flow_to(join)
                meet = x.meet(y)
                assert meet.can_flow_to(x) and meet.can_flow_to(y)


class TestSecureRuntime:
    def test_initial_state(self):
        runtime = SecureRuntime()
        assert runtime.current_label == PUBLIC
        assert runtime.clearance == SECRET

    def test_bad_initial_state_rejected(self):
        with pytest.raises(IFCViolation):
            SecureRuntime(current=SECRET, clearance=PUBLIC)

    def test_label_and_unlabel_floats_current(self):
        runtime = SecureRuntime()
        boxed = runtime.label(SECRET, 42)
        assert runtime.unlabel(boxed) == 42
        assert runtime.current_label == SECRET

    def test_cannot_label_below_current(self):
        runtime = SecureRuntime(current=SECRET)
        with pytest.raises(IFCViolation, match="below the current"):
            runtime.label(PUBLIC, 42)

    def test_cannot_exceed_clearance(self):
        runtime = SecureRuntime(clearance=PUBLIC)
        with pytest.raises(IFCViolation, match="clearance"):
            runtime.label(SECRET, 42)

    def test_unlabel_above_clearance_rejected(self):
        runtime = SecureRuntime(clearance=PUBLIC)
        boxed = Labeled(SECRET, 42)
        with pytest.raises(IFCViolation):
            runtime.unlabel(boxed)

    def test_unlabel_tcb_does_not_float(self):
        runtime = SecureRuntime()
        boxed = runtime.label(SECRET, 42)
        assert runtime.unlabel_tcb(boxed) == 42
        assert runtime.current_label == PUBLIC

    def test_to_labeled_scopes_taint(self):
        runtime = SecureRuntime()
        secret = runtime.label(SECRET, 10)

        def body():
            return runtime.unlabel(secret) + 1

        boxed = runtime.to_labeled(SECRET, body)
        assert runtime.current_label == PUBLIC  # restored
        assert boxed.label == SECRET
        assert runtime.unlabel_tcb(boxed) == 11

    def test_to_labeled_rejects_underlabeled_result(self):
        runtime = SecureRuntime()
        secret = runtime.label(SECRET, 10)
        with pytest.raises(IFCViolation, match="tainted"):
            runtime.to_labeled(PUBLIC, lambda: runtime.unlabel(secret))

    def test_taint(self):
        runtime = SecureRuntime()
        runtime.taint(SECRET)
        assert runtime.current_label == SECRET

    def test_labeled_repr_hides_value(self):
        assert "protected" in repr(Labeled(SECRET, "swordfish"))
        assert "swordfish" not in repr(Labeled(SECRET, "swordfish"))
