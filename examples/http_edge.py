#!/usr/bin/env python3
"""Exactly-once over HTTP: the journaled edge, retries, and replay.

A real client talks to the serving runtime over HTTP and *will* retry:
timeouts, flaky proxies, duplicated deliveries.  This walkthrough runs
the full loop the journal was built for:

1. a journaled gateway behind the stdlib :class:`HttpEdge` — every
   state-changing request is appended to the write-ahead journal before
   it executes;
2. a downgrade sent with an ``Idempotency-Key``, then *re-sent* with the
   same key — the duplicate is answered byte-identically from the
   journal and the privacy budget is not charged twice;
3. a second query refused by the budget floor — a refusal is a
   journaled decision, not a transport error (HTTP 200);
4. the observability surface: a structured JSON access log stamping
   each request with the trace id the gateway bound to its idempotency
   key, a ``/metrics`` scrape of the Prometheus exposition, and
   ``/statusz`` runtime introspection;
5. :func:`replay_journal` re-executing the recorded history against a
   fresh twin and confirming every decision, refusal, audit digest —
   and every trace tree — comes out bit-identical.

Run:  python examples/http_edge.py
"""

import json
import urllib.error
import urllib.request

from repro import DeclassificationServer, SecretSpec, ServerConfig, size_above
from repro.core.plugin import CompileOptions
from repro.lang.canonical import spec_to_json
from repro.server.edge import HttpEdge
from repro.server.journal import MemoryJournalBackend, RequestJournal
from repro.server.replay import replay_journal

SPEC = SecretSpec.declare("EdgeLoc", x=(0, 199), y=(0, 199))

#: Alice is at (30, 40); "west" keeps 20,000 locations possible, but
#: folding "south" on top would leave 10,000 — below the 15,000 floor.
QUERIES = [("west", "x <= 99"), ("south", "y <= 99")]


def call(address, method, path, body=None, key=None):
    """One JSON request against the edge; returns (status, decoded body)."""
    host, port = address
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method
    )
    request.add_header("Content-Type", "application/json")
    if key is not None:
        request.add_header("Idempotency-Key", key)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def scrape(address, path):
    """One plain-text GET (``/metrics`` serves text, not JSON)."""
    host, port = address
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=30
    ) as response:
        return response.read().decode("utf-8")


def main() -> None:
    journal = RequestJournal(MemoryJournalBackend())
    server = DeclassificationServer(
        size_above(100),
        budget_floor=size_above(15_000),
        options=CompileOptions(domain="interval", modes=("under", "over")),
        config=ServerConfig(inline_compiles=True),
        journal=journal,
    )
    access_lines: list[str] = []

    with HttpEdge(server, access_log=access_lines.append) as edge:
        for name, text in QUERIES:
            status, receipt = call(
                edge.address,
                "POST",
                "/v1/queries",
                {"name": name, "query": text, "secret": spec_to_json(SPEC)},
            )
            assert status == 200 and receipt["verified"], receipt
            print(f"compiled {name!r:<8} verified={receipt['verified']}")

        status, opened = call(
            edge.address,
            "POST",
            "/v1/sessions",
            {
                "session_id": "conn-1",
                "user_id": "alice",
                "secret": {"spec": spec_to_json(SPEC), "value": [30, 40]},
            },
        )
        assert status == 201, opened
        print(f"\nopened session {opened['session_id']!r} for alice")

        status, first = call(
            edge.address,
            "POST",
            "/v1/downgrades",
            {"session_id": "conn-1", "query_name": "west"},
            key="alice/west/1",
        )
        assert status == 200 and first["authorized"], first
        remaining = server.ledger.remaining("alice", SPEC)
        print(f"downgrade west: response={first['response']} "
              f"budget left={remaining:,}")

        # The client times out and retries with the same Idempotency-Key.
        # The journal answers; nothing re-executes, nothing is re-charged.
        status, retried = call(
            edge.address,
            "POST",
            "/v1/downgrades",
            {"session_id": "conn-1", "query_name": "west"},
            key="alice/west/1",
        )
        assert status == 200 and retried == first
        assert server.ledger.remaining("alice", SPEC) == remaining
        assert server.stats.journal_duplicates >= 1
        print(f"retry with same key: byte-identical answer, "
              f"budget still {remaining:,} "
              f"(journal duplicates: {server.stats.journal_duplicates})")

        # Composition is what exhausts the budget: "south" alone is fine,
        # but folded onto "west" it would corner alice below the floor.
        # The refusal is a journaled *decision* — HTTP 200, not an error.
        status, refused = call(
            edge.address,
            "POST",
            "/v1/downgrades",
            {"session_id": "conn-1", "query_name": "south"},
            key="alice/south/1",
        )
        assert status == 200 and not refused["authorized"]
        assert "budget exhausted" in refused["reason"]
        print(f"downgrade south: refused ({refused['reason']})")

        status, audit = call(edge.address, "GET", "/v1/audit")
        assert status == 200
        print(f"audit over HTTP: {audit['journal']['entries']} journal "
              f"entries, {audit['journal']['duplicates']} duplicates")

        # Scrape the telemetry the run just produced.  /metrics is the
        # Prometheus exposition; /statusz the structured twin; the
        # access log already captured one JSON line per request above.
        exposition = scrape(edge.address, "/metrics")
        refusal_lines = [
            line for line in exposition.splitlines()
            if line.startswith("anosy_ledger_refusals_total")
        ]
        assert refusal_lines, exposition
        print("\n/metrics (refusals):", *refusal_lines, sep="\n  ")

        status, statusz = call(edge.address, "GET", "/statusz")
        assert status == 200 and statusz["journal"]["pending"] == 0
        print(f"/statusz: {statusz['stats']['downgrades_served']} served, "
              f"{statusz['journal']['duplicates']} journal duplicates, "
              f"{statusz['traces']['retained']} traces retained")

        refused_log = next(  # the "south" refusal's log line
            record
            for record in map(json.loads, access_lines)
            if record["idempotency_key"] == "alice/south/1"
        )
        assert refused_log["trace_id"] is not None
        print(f"access log: {refused_log['method']} {refused_log['route']} "
              f"{refused_log['status']} {refused_log['ms']}ms "
              f"trace={refused_log['trace_id']}")

    # The edge is down; the journal is the record.  Replay it against a
    # fresh twin and require bit-identical decisions — including the
    # trace trees, whose ids derive from (idempotency key, journal seq)
    # — the same check the CI `replay` job runs on crash histories.
    report = replay_journal(journal, trace_digest=server.hub.tracer.digest())
    assert report.conforms, report.divergences
    assert [r.query_name for r in report.refusals] == ["south"]
    assert report.replayed_trace_digest == report.recorded_trace_digest
    print(f"\nreplay: {report.replayed} entries re-executed, "
          f"{report.matched} matched, refusals={[r.query_name for r in report.refusals]}, "
          f"traces bit-identical={report.replayed_trace_digest == report.recorded_trace_digest}, "
          f"conforms={report.conforms}")


if __name__ == "__main__":
    main()
