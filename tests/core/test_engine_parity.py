"""Differential tests: the kernel engine must not change what is synthesized.

The perf layer (compiled kernels, vectorized finishing, specialization
memo) must be invisible in results: identical synthesized domains, and —
with vectorization disabled — identical search-node and split counts to
the tree-walking interpreter path.  Solver statistics must also surface
through synthesis results up to the compile report.
"""

import pytest

from repro.core.itersynth import iter_synth_powerset
from repro.core.plugin import CompileOptions, compile_query
from repro.core.synth import SynthOptions, synth_interval
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec

SPEC = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
NEARBY = parse_bool("abs(x - 200) + abs(y - 200) <= 100")

KERNEL_OPTS = SynthOptions(vector_threshold=0)
INTERP_OPTS = SynthOptions(use_kernels=False, vector_threshold=0)


class TestSynthParity:
    @pytest.mark.parametrize("mode", ["under", "over"])
    @pytest.mark.parametrize("polarity", [True, False])
    def test_interval_domains_and_counts_match(self, mode, polarity):
        kernel = synth_interval(
            NEARBY, SPEC, mode=mode, polarity=polarity, options=KERNEL_OPTS
        )
        interp = synth_interval(
            NEARBY, SPEC, mode=mode, polarity=polarity, options=INTERP_OPTS
        )
        assert kernel.domain == interp.domain
        assert kernel.stats is not None and interp.stats is not None
        assert kernel.stats.nodes == interp.stats.nodes
        assert kernel.stats.splits == interp.stats.splits

    @pytest.mark.parametrize("mode", ["under", "over"])
    def test_powerset_domains_and_counts_match(self, mode):
        kernel = iter_synth_powerset(
            NEARBY, SPEC, k=3, mode=mode, polarity=True, options=KERNEL_OPTS
        )
        interp = iter_synth_powerset(
            NEARBY, SPEC, k=3, mode=mode, polarity=True, options=INTERP_OPTS
        )
        assert kernel.domain == interp.domain
        assert kernel.iterations == interp.iterations
        assert kernel.stats.nodes == interp.stats.nodes
        assert kernel.stats.splits == interp.stats.splits

    def test_default_vectorized_path_same_domains(self):
        """Same thresholds => same domains, whichever engine runs them."""
        kernel = iter_synth_powerset(
            NEARBY, SPEC, k=3, mode="under", polarity=True,
            options=SynthOptions(),
        )
        interp = iter_synth_powerset(
            NEARBY, SPEC, k=3, mode="under", polarity=True,
            options=SynthOptions(use_kernels=False),
        )
        assert kernel.domain == interp.domain


class TestStatsWiring:
    def test_compile_reports_solver_counters(self):
        compiled = compile_query(
            "near", NEARBY, SPEC, CompileOptions(domain="powerset", k=3)
        )
        for mode in ("under", "over"):
            report = compiled.reports[mode]
            assert report.solver_nodes > 0
            assert report.solver_splits > 0
            # Grid-backed finishing fired somewhere in the synthesis: on
            # this small space the region oracle absorbs the probes that
            # scalar grid finishing used to (front_boxes), and the
            # consumed fronts are counted per optimizer run.
            assert report.vector_boxes + report.front_boxes > 0
            assert report.probe_fronts > 0
            assert report.front_boxes > 0

    def test_vectorized_finishing_counted_in_all_procedures(self):
        from repro.solver.boxes import Box
        from repro.solver.decide import (
            SolverStats,
            count_models,
            decide_exists,
            decide_forall,
            find_true_box,
        )

        names = ("x", "y")
        crossing = Box.make((150, 251), (150, 251))
        for procedure in (decide_forall, decide_exists, count_models):
            stats = SolverStats()
            # Threshold above the box volume: the undecided root box itself
            # is finished on a grid, whatever the search would do first.
            procedure(NEARBY, crossing, names, stats, vector_threshold=16384)
            assert stats.vector_boxes > 0, procedure.__name__
        stats = SolverStats()
        find_true_box(NEARBY, crossing, names, stats=stats, vector_threshold=16384)
        assert stats.vector_boxes > 0

    def test_specialization_memo_reused_across_probes(self):
        from repro.solver.decide import make_engine

        engine = make_engine(SPEC.field_names)
        # Disable the region oracle (fused_probes=False) so the probes
        # actually run on the worklists whose memo this test observes.
        iter_synth_powerset(
            NEARBY, SPEC, k=3, mode="under", polarity=True, engine=engine,
            options=SynthOptions(fused_probes=False),
        )
        assert engine.space.spec_hits > 0
